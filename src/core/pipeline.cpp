#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "resil/adaptive_policy.hpp"
#include "resil/membership.hpp"
#include "support/flat_map.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"
#include "svc/grid_service.hpp"

namespace grasp::core {

Pipeline::Pipeline(PipelineParams params)
    : params_(std::move(params)), traits_(pipeline_traits()) {
  if (params_.source_window == 0)
    throw std::invalid_argument("Pipeline: source_window must be positive");
  if (params_.remap_advantage < 1.0)
    throw std::invalid_argument("Pipeline: remap_advantage must be >= 1");
  if (params_.replicate_imbalance_factor < 0.0)
    throw std::invalid_argument(
        "Pipeline: replicate_imbalance_factor must be >= 0");
  if (params_.adaptive_patience) {
    if (params_.patience_sigma < 0.0)
      throw std::invalid_argument("Pipeline: patience_sigma must be >= 0");
    if (params_.min_patience.value <= 0.0 ||
        params_.min_patience > params_.down_stage_patience)
      throw std::invalid_argument(
          "Pipeline: min_patience must lie in (0, down_stage_patience]");
    if (params_.patience_min_samples == 0)
      throw std::invalid_argument(
          "Pipeline: patience_min_samples must be positive");
  }
}

namespace {

enum class OpKind { StageIn, StageCompute, SinkOut, Migration };

struct PendingOp {
  OpKind kind;
  std::size_t stage = 0;
  std::size_t replica = 0;
  std::uint64_t item = 0;
};

struct ItemState {
  NodeId location;  ///< node currently holding the item's data
  Seconds entered;  ///< when its first transfer was submitted
};

/// One node executing (a share of) a stage.
struct Replica {
  NodeId node;
  std::optional<std::uint64_t> receiving;
  std::deque<std::uint64_t> received;  ///< shipped in, awaiting compute
  std::optional<std::uint64_t> computing;
  bool migrating = false;  ///< remap or replica-seeding transfer in flight
  bool down = false;       ///< node lost, no spare yet; waiting for a join
  double latest_spm = 0.0;

  [[nodiscard]] bool quiescent() const {
    return !receiving && !computing && !migrating;
  }
};

struct StageState {
  std::vector<Replica> replicas;
  std::deque<std::uint64_t> waiting;  ///< items ready to be shipped here
  std::optional<NodeId> pending_remap;
  std::size_t pending_remap_replica = 0;
  // Exit resequencing: a replicated stage can finish items out of order;
  // emission is held until the next id in sequence is ready.
  std::uint64_t next_expected = 0;
  std::map<std::uint64_t, bool> done_buffer;
  // statistics
  std::size_t items_done = 0;
  double busy_seconds = 0.0;
  double service_sum = 0.0;
  Ewma service_ewma{0.3};
  std::size_t items_since_structural = 0;
};

}  // namespace

PipelineReport Pipeline::run(Backend& backend, const gridsim::Grid& grid,
                             const std::vector<NodeId>& pool,
                             const workloads::PipelineSpec& spec,
                             std::size_t item_count) {
  // See TaskFarm::run — single-tenant service, inline fast path.
  svc::GridService::Params service_params;
  service_params.use_calibration_cache = false;
  svc::GridService service(backend, grid, pool, service_params);
  const svc::JobHandle handle =
      service.submit(svc::PipelineJob{params_, spec, item_count});
  service.wait(handle);
  return handle.pipeline_report();
}

PipelineReport Pipeline::run_engine(Backend& backend,
                                    const gridsim::Grid& grid,
                                    const std::vector<NodeId>& pool,
                                    const workloads::PipelineSpec& spec,
                                    std::size_t item_count) {
  const std::size_t depth = spec.depth();
  if (depth == 0) throw std::invalid_argument("Pipeline: empty spec");
  if (item_count == 0)
    throw std::invalid_argument("Pipeline: item_count must be positive");
  if (!params_.stage_replicas.empty() &&
      params_.stage_replicas.size() != depth)
    throw std::invalid_argument(
        "Pipeline: stage_replicas must match the stage count");
  std::size_t initial_nodes = 0;
  for (std::size_t s = 0; s < depth; ++s) {
    const std::size_t r = params_.stage_replicas.empty()
                              ? 1
                              : std::max<std::size_t>(
                                    1, params_.stage_replicas[s]);
    initial_nodes += r;
  }

  // Membership: map stages over the nodes present at t=0; absent nodes
  // (late joiners) arrive through the tracker as spares.
  const gridsim::ChurnTimeline* churn =
      params_.membership_enabled ? grid.churn() : nullptr;
  const std::vector<NodeId> present =
      churn ? churn->members_at(pool, backend.now()) : pool;
  if (present.size() < initial_nodes)
    throw std::invalid_argument("Pipeline: pool smaller than total replicas");

  const NodeId source =
      params_.source_node.is_valid() ? params_.source_node : present.front();
  std::optional<resil::MembershipTracker> tracker;
  if (churn != nullptr) tracker.emplace(*churn, pool);

  PipelineReport report;
  TokenAllocator tokens;

  // ---- Observability.  Without a caller-supplied Telemetry the run uses
  // a private detail-disabled instance: counters still drive the report
  // (the report is a registry snapshot), histograms/spans are skipped.
  obs::Telemetry private_telemetry(/*detail=*/false);
  obs::Telemetry& tel =
      params_.telemetry != nullptr ? *params_.telemetry : private_telemetry;
  obs::MetricsRegistry& met = tel.metrics;
  struct BackendClock final : obs::Clock {
    explicit BackendClock(Backend& b) : backend(b) {}
    [[nodiscard]] double now_s() const override {
      return backend.now().value;
    }
    Backend& backend;
  } obs_clock{backend};
  struct ClockGuard {
    obs::Telemetry& tel;
    ~ClockGuard() { tel.set_clock(nullptr); }
  } clock_guard{tel};
  tel.set_clock(&obs_clock);
  const resil::ResilienceMetrics rm = resil::ResilienceMetrics::register_in(met);
  // Whole-registry pre-run baseline: the report delta is one generic
  // subtraction, decoded by metric name (resil::from_snapshot).
  const obs::MetricsSnapshot base_snap = met.snapshot();
  const obs::HistogramHandle h_item_latency =
      met.histogram("pipeline.item_latency_seconds", {1e-3, 2.0, 48});
  // Online SLO watchdog (observation only) + crash flight recorder.
  std::optional<obs::Watchdog> watchdog;
  if (params_.slos.any()) watchdog.emplace(params_.slos, tel);
  obs::FlightRecorder* const flight = tel.flight;
  if (flight != nullptr)
    flight->note(backend.now().value, "run", "pipeline_begin", source,
                 static_cast<double>(item_count));

  perfmon::MonitorDaemon::Params mon_params = params_.monitor;
  mon_params.root = source;
  perfmon::MonitorDaemon monitor(grid, present, mon_params);
  monitor.attach_metrics(&met);
  // Nodes the monitor watches; extended when late joiners appear so the
  // load forecasts estimate_spm needs exist for every candidate spare.
  std::vector<NodeId> observed = present;

  // ---- Calibration: probe every present node with stage-shaped work. ---
  workloads::TaskSet probes;
  probes.name = "pipeline-probes";
  const double mean_stage_work =
      spec.work_per_item().value / static_cast<double>(depth);
  for (std::size_t i = 0; i < present.size(); ++i) {
    workloads::TaskSpec t;
    t.id = TaskId{i};
    t.work = Mops{mean_stage_work};
    t.input = spec.source_bytes;
    t.output = spec.stages.back().output_bytes;
    probes.tasks.push_back(t);
  }
  TaskSource probe_source(probes);
  CalibrationParams cal_params = params_.calibration;
  if (!cal_params.root.is_valid()) cal_params.root = source;
  cal_params.select_fraction = 1.0;  // rank everyone; mapping picks below
  cal_params.exclusion_ratio = 0.0;
  Calibrator calibrator(traits_, cal_params);

  // Tokens of operations killed by a node loss; their completions are
  // swallowed when the backend delivers them.  Declared before calibration:
  // a node dying mid-probe surrenders its stalled sample ops here.
  std::unordered_set<OpToken> dead_tokens;
  // Nodes currently lost to the pool (cleared on rejoin): guards the loss
  // counters against double counting when e.g. a migration target dies
  // mid-transit and the loss is noticed twice.
  std::unordered_set<std::uint64_t> lost_nodes;
  // Last completion or membership event: the reference point for the
  // down-stage patience window while the liveness tick idles.
  Seconds last_activity = backend.now();
  // Adaptive patience: when a loss is first noticed the node's departure
  // time is parked here; its rejoin feeds the outage-duration estimator,
  // which tightens (never loosens — down_stage_patience stays the cap) the
  // wedged-wait bound once enough rejoins have been seen.
  std::unordered_map<std::uint64_t, Seconds> down_at;
  resil::WelfordEstimator outage_stats;
  auto effective_patience = [&]() -> Seconds {
    if (!params_.adaptive_patience ||
        outage_stats.count() < params_.patience_min_samples)
      return params_.down_stage_patience;
    const double bound =
        outage_stats.mean() + params_.patience_sigma * outage_stats.stddev();
    return Seconds{std::clamp(bound, params_.min_patience.value,
                              params_.down_stage_patience.value)};
  };

  // ForeignOps for the *initial* calibration, so the t=0 stage mapping
  // tolerates a pool that is already churning: losses crossed mid-probe
  // feed the calibrator's abandon hook (the corpse drops out of the
  // ranking instead of stalling the probe chain for the whole outage), and
  // joiners are parked until the mapping exists, then admitted as spares.
  std::vector<NodeId> newly_dead_cal;
  std::vector<NodeId> joined_during_cal;
  ForeignOps cal_foreign;
  cal_foreign.pending = [&] { return dead_tokens.size(); };
  cal_foreign.swallow = [&](OpToken token) {
    if (dead_tokens.erase(token) > 0) {
      met.inc(rm.zombie_completions);
      return true;
    }
    return false;
  };
  cal_foreign.dead_nodes = [&](Seconds at) {
    if (tracker) {
      for (const auto& e : tracker->poll(at)) {
        switch (e.kind) {
          case gridsim::ChurnEventKind::Crash:
          case gridsim::ChurnEventKind::Leave: {
            const bool crashed = e.kind == gridsim::ChurnEventKind::Crash;
            if (lost_nodes.insert(e.node.value).second) {
              if (crashed)
                met.inc(rm.crashes_detected);
              else
                met.inc(rm.leaves);
              report.trace.record(
                  {at,
                   crashed ? gridsim::TraceEventKind::NodeCrashDetected
                           : gridsim::TraceEventKind::NodeLeftPool,
                   e.node, TaskId::invalid(), 0.0, "calibration"});
            }
            newly_dead_cal.push_back(e.node);
            // A joiner dying before the mapping exists must not be parked
            // for admission — its crash event is consumed here and would
            // never be re-reported to the main loop.
            joined_during_cal.erase(std::remove(joined_during_cal.begin(),
                                                joined_during_cal.end(),
                                                e.node),
                                    joined_during_cal.end());
            break;
          }
          case gridsim::ChurnEventKind::Join:
          case gridsim::ChurnEventKind::Rejoin:
            if (std::find(joined_during_cal.begin(), joined_during_cal.end(),
                          e.node) == joined_during_cal.end())
              joined_during_cal.push_back(e.node);
            lost_nodes.erase(e.node.value);  // rejoined mid-calibration
            break;
        }
      }
    }
    return std::exchange(newly_dead_cal, {});
  };
  cal_foreign.surrender = [&](OpToken token, NodeId, const workloads::TaskSpec&,
                              bool) { dead_tokens.insert(token); };

  const obs::SpanId cal_span = tel.spans.begin("calibration");
  const CalibrationResult calibration =
      calibrator.run(backend, present, probe_source, &monitor, &report.trace,
                     tokens, &cal_foreign);
  tel.spans.end(cal_span, static_cast<double>(calibration.tasks_consumed),
                "initial");
  if (calibration.ranking.size() < initial_nodes)
    throw std::runtime_error(
        "Pipeline: pool shrank below the replica count during calibration");

  std::unordered_map<NodeId, double> cal_spm, cal_load;
  double spm_sum = 0.0;
  for (const auto& s : calibration.ranking) {
    cal_spm[s.node] = std::max(1e-9, s.adjusted_spm);
    cal_load[s.node] = s.observed_load;
    spm_sum += cal_spm[s.node];
  }
  // Fallback fitness for nodes that joined after calibration (no sample
  // yet): the pool mean, neither favoured nor penalised.
  const double fallback_spm =
      spm_sum / static_cast<double>(calibration.ranking.size());
  auto known_spm = [&](NodeId n) {
    const auto it = cal_spm.find(n);
    return it != cal_spm.end() ? it->second : fallback_spm;
  };

  // Extrapolate a node's current fitness from calibration fitness and the
  // forecast load via the processor-sharing rule (spm scales with load+1).
  auto estimate_spm = [&](NodeId n) {
    const double forecast = monitor.forecast_load(n);
    const auto load_it = cal_load.find(n);
    const double at_cal = load_it != cal_load.end() ? load_it->second : 0.0;
    return known_spm(n) * (forecast + 1.0) / (at_cal + 1.0);
  };

  // ---- Initial mapping: heaviest stage -> fittest nodes. ---------------
  std::vector<std::size_t> stage_order(depth);
  for (std::size_t s = 0; s < depth; ++s) stage_order[s] = s;
  std::sort(stage_order.begin(), stage_order.end(),
            [&](std::size_t a, std::size_t b) {
              return spec.stages[a].work_per_item >
                     spec.stages[b].work_per_item;
            });
  std::vector<StageState> stages(depth);
  std::deque<NodeId> spares;
  {
    std::size_t next = 0;
    for (const std::size_t s : stage_order) {
      const std::size_t want = params_.stage_replicas.empty()
                                   ? 1
                                   : std::max<std::size_t>(
                                         1, params_.stage_replicas[s]);
      for (std::size_t r = 0; r < want; ++r) {
        Replica rep;
        rep.node = calibration.ranking[next++].node;
        stages[s].replicas.push_back(std::move(rep));
      }
    }
    for (; next < calibration.ranking.size(); ++next)
      spares.push_back(calibration.ranking[next].node);
  }

  ExecutionMonitor exec_monitor(traits_, params_.threshold);
  auto arm_monitor = [&] {
    std::vector<NodeId> mapped;
    OnlineStats base;
    for (const auto& st : stages) {
      for (const auto& rep : st.replicas) {
        if (rep.down) continue;
        if (std::find(mapped.begin(), mapped.end(), rep.node) == mapped.end())
          mapped.push_back(rep.node);
        base.add(known_spm(rep.node));
      }
    }
    exec_monitor.arm(base.mean(), mapped, backend.now());
  };
  arm_monitor();

  // ---- Streaming state. -------------------------------------------------
  // Flat insertion-ordered tables (support/flat_map.hpp): the live sets are
  // bounded by the stage count and the source window, where a linear scan
  // beats hashing on every per-event lookup — the same conversion the farm's
  // in-flight table got in the hot-path overhaul — and iteration order is
  // deterministic, which the loss-handling sweeps below rely on.
  FlatMap<std::uint64_t, ItemState> items;
  FlatMap<OpToken, PendingOp> ops;
  auto item_at = [&](std::uint64_t id) -> ItemState& {
    ItemState* state = items.find(id);
    if (state == nullptr)
      throw std::logic_error("Pipeline: unknown item id");
    return *state;
  };
  std::uint64_t injected = 0;
  std::vector<double> latencies;
  std::vector<std::uint64_t> emission_order;  // delivered order at the sink
  latencies.reserve(item_count);
  Seconds last_done = Seconds::zero();

  auto bytes_into = [&](std::size_t s) {
    return s == 0 ? spec.source_bytes : spec.stages[s - 1].output_bytes;
  };

  // ---- Membership machinery (churn grids). ------------------------------
  // Node to re-ship stage-s input from after the primary copy is lost: a
  // live upstream replica when one exists, else the source (which holds the
  // original payload).  Never names a corpse.
  auto upstream_holder = [&](std::size_t s) {
    if (s > 0) {
      for (const Replica& rep : stages[s - 1].replicas) {
        if (!rep.down && (!tracker || tracker->is_member(rep.node)))
          return rep.node;
      }
    }
    return source;
  };

  auto best_live_spare = [&] {
    auto best = spares.end();
    for (auto it = spares.begin(); it != spares.end(); ++it) {
      if (tracker && !tracker->is_member(*it)) continue;
      if (best == spares.end() || estimate_spm(*it) < estimate_spm(*best))
        best = it;
    }
    return best;
  };

  // A node left the pool.  Every replica it hosted fails over: in-flight
  // operations are killed, items it held are re-shipped from upstream (the
  // crashed copy is gone; upstream stages retain their outputs until the
  // item exits — the ack-buffer protocol), and the replica moves to the
  // best live spare — or waits down for a joiner when no spare exists.
  auto handle_node_loss = [&](NodeId node, bool crashed) {
    if (node == source)
      throw std::runtime_error(
          "Pipeline: source node lost to churn (place it on a protected "
          "node)");
    last_activity = backend.now();
    const bool first_loss = lost_nodes.insert(node.value).second;
    spares.erase(std::remove(spares.begin(), spares.end(), node),
                 spares.end());
    for (std::size_t s = 0; s < depth; ++s) {
      StageState& st = stages[s];
      if (st.pending_remap && *st.pending_remap == node)
        st.pending_remap.reset();
      for (std::size_t r = 0; r < st.replicas.size(); ++r) {
        Replica& rep = st.replicas[r];
        if (rep.node != node || rep.down) continue;
        for (auto op_it = ops.begin(); op_it != ops.end();) {
          const PendingOp& op = op_it->value;
          if (op.kind != OpKind::SinkOut && op.stage == s &&
              op.replica == r) {
            dead_tokens.insert(op_it->key);
            op_it = ops.erase(op_it);
          } else {
            ++op_it;
          }
        }
        auto requeue = [&](std::uint64_t id) {
          item_at(id).location = upstream_holder(s);
          st.waiting.push_front(id);
          met.inc(rm.tasks_redispatched);
        };
        if (rep.receiving) {
          requeue(*rep.receiving);
          rep.receiving.reset();
        }
        while (!rep.received.empty()) {
          requeue(rep.received.back());
          rep.received.pop_back();
        }
        if (rep.computing) {
          requeue(*rep.computing);
          rep.computing.reset();
        }
        rep.migrating = false;
        rep.latest_spm = 0.0;
        const auto best = best_live_spare();
        if (best != spares.end()) {
          rep.node = *best;
          spares.erase(best);
          ++report.remaps;
          report.trace.record({backend.now(),
                               gridsim::TraceEventKind::StageRemapped,
                               rep.node, TaskId::invalid(),
                               static_cast<double>(s), "failover"});
          GRASP_LOG_INFO("pipeline") << "stage " << s << " failed over "
                                     << node.value << " -> "
                                     << rep.node.value;
        } else {
          rep.down = true;
          GRASP_LOG_INFO("pipeline")
              << "stage " << s << " lost node " << node.value
              << " with no spare; waiting for a join";
        }
      }
    }
    // Items whose only data copy sat on the dead node but had already been
    // handed downstream (queued for, or mid-transfer into, the next stage)
    // must be re-homed too, or schedule() would ship them out of a corpse.
    for (std::size_t s = 0; s < depth; ++s) {
      StageState& st = stages[s];
      for (const std::uint64_t id : st.waiting) {
        if (item_at(id).location == node)
          item_at(id).location = upstream_holder(s);
      }
      for (std::size_t r = 0; r < st.replicas.size(); ++r) {
        Replica& rep = st.replicas[r];
        if (!rep.receiving || item_at(*rep.receiving).location != node)
          continue;
        for (auto op_it = ops.begin(); op_it != ops.end();) {
          if (op_it->value.kind == OpKind::StageIn &&
              op_it->value.stage == s && op_it->value.replica == r) {
            dead_tokens.insert(op_it->key);
            op_it = ops.erase(op_it);
          } else {
            ++op_it;
          }
        }
        item_at(*rep.receiving).location = upstream_holder(s);
        st.waiting.push_front(*rep.receiving);
        rep.receiving.reset();
        met.inc(rm.tasks_redispatched);
      }
    }
    // Result bytes mid-transfer out of the corpse died with it: kill the
    // sink transfer and re-run the final stage for those items (their
    // emission is retracted; late re-delivery is honestly reported through
    // output_in_order).
    for (auto op_it = ops.begin(); op_it != ops.end();) {
      const PendingOp& op = op_it->value;
      if (op.kind == OpKind::SinkOut && items.contains(op.item) &&
          item_at(op.item).location == node) {
        dead_tokens.insert(op_it->key);
        const auto emitted = std::find(emission_order.rbegin(),
                                       emission_order.rend(), op.item);
        if (emitted != emission_order.rend())
          emission_order.erase(std::prev(emitted.base()));
        item_at(op.item).location = upstream_holder(depth - 1);
        stages[depth - 1].waiting.push_front(op.item);
        met.inc(rm.tasks_redispatched);
        op_it = ops.erase(op_it);
      } else {
        ++op_it;
      }
    }
    if (first_loss) {
      if (params_.adaptive_patience) down_at[node.value] = backend.now();
      if (crashed) {
        met.inc(rm.crashes_detected);
        tel.spans.instant("crash_detected", 0, node);
        if (flight != nullptr)
          flight->note(backend.now().value, "crash", "stage lost", node, 0.0);
      } else {
        met.inc(rm.leaves);
      }
      report.trace.record({backend.now(),
                           crashed
                               ? gridsim::TraceEventKind::NodeCrashDetected
                               : gridsim::TraceEventKind::NodeLeftPool,
                           node, TaskId::invalid(), 0.0, ""});
    }
    arm_monitor();
  };

  // A node joined: revive a down replica if any stage is starving,
  // otherwise park it as a spare for remaps/replications.
  auto handle_join = [&](NodeId node) {
    met.inc(rm.joins);
    last_activity = backend.now();
    lost_nodes.erase(node.value);
    if (const auto it = down_at.find(node.value); it != down_at.end()) {
      outage_stats.add((backend.now() - it->second).value);
      down_at.erase(it);
    }
    report.trace.record({backend.now(),
                         gridsim::TraceEventKind::NodeJoinedPool, node,
                         TaskId::invalid(), 0.0, ""});
    if (std::find(observed.begin(), observed.end(), node) == observed.end()) {
      observed.push_back(node);
      monitor.rewatch(observed);
    }
    for (std::size_t s = 0; s < depth; ++s) {
      for (Replica& rep : stages[s].replicas) {
        if (!rep.down) continue;
        rep.down = false;
        rep.node = node;
        ++report.remaps;
        met.inc(rm.admissions);
        report.trace.record({backend.now(),
                             gridsim::TraceEventKind::StageRemapped, node,
                             TaskId::invalid(), static_cast<double>(s),
                             "revive"});
        arm_monitor();
        return;
      }
    }
    spares.push_back(node);
  };

  auto consume_membership = [&] {
    if (!tracker) return;
    for (const auto& e : tracker->poll(backend.now())) {
      switch (e.kind) {
        case gridsim::ChurnEventKind::Crash:
          handle_node_loss(e.node, true);
          break;
        case gridsim::ChurnEventKind::Leave:
          handle_node_loss(e.node, false);
          break;
        case gridsim::ChurnEventKind::Join:
        case gridsim::ChurnEventKind::Rejoin:
          handle_join(e.node);
          break;
      }
    }
  };

  // Emit `item` out of stage `s` (already resequenced): hand it to the
  // next stage's waiting queue, or ship it to the sink.
  auto emit_downstream = [&](std::size_t s, std::uint64_t item) {
    if (s + 1 < depth) {
      stages[s + 1].waiting.push_back(item);
    } else {
      emission_order.push_back(item);
      const OpToken token = tokens.alloc();
      backend.submit_transfer(token, item_at(item).location, source,
                              spec.stages.back().output_bytes);
      ops.emplace(token, PendingOp{OpKind::SinkOut, s, 0, item});
    }
  };

  // Submission wave of the current schedule() pass: every receive, compute
  // and migration the pass decides, in decision order, shipped to the
  // backend in one submit_batch call.  Only schedule() (and the remap
  // helper it calls) touch it.
  std::vector<OpRequest> submit_wave;

  auto apply_pending_remap = [&](std::size_t s) {
    StageState& st = stages[s];
    if (!st.pending_remap) return;
    Replica& rep = st.replicas[st.pending_remap_replica];
    if (rep.down || rep.receiving || rep.computing || rep.migrating) return;
    const NodeId target = *st.pending_remap;
    st.pending_remap.reset();
    rep.migrating = true;
    // Items already shipped to the old node must be re-shipped: return
    // them to the stage queue in id order (they predate everything queued).
    while (!rep.received.empty()) {
      st.waiting.push_front(rep.received.back());
      rep.received.pop_back();
    }
    const OpToken token = tokens.alloc();
    submit_wave.push_back(OpRequest::transfer(token, rep.node, target,
                                              Bytes{params_.stage_state_bytes}));
    ops.emplace(token,
                PendingOp{OpKind::Migration, s, st.pending_remap_replica, 0});
    report.trace.record({backend.now(), gridsim::TraceEventKind::StageRemapped,
                         target, TaskId::invalid(), static_cast<double>(s),
                         "migrating"});
    GRASP_LOG_INFO("pipeline") << "stage " << s << " remapping "
                               << rep.node.value << " -> " << target.value;
    ++report.remaps;
  };

  auto schedule = [&] {
    // Source keeps stage 0 fed up to the window.
    StageState& first = stages.front();
    while (injected < item_count &&
           first.waiting.size() < params_.source_window) {
      const std::uint64_t id = injected++;
      items.emplace(id, ItemState{source, backend.now()});
      first.waiting.push_back(id);
    }
    // The pass stages every submission — migrations, receives and computes
    // interleaved exactly as they are decided — and ships them in one
    // submit_batch call (a single bulk event-queue insert on the
    // simulator).  Batch order equals decision order, so completion
    // ordering is unchanged.
    for (std::size_t s = 0; s < depth; ++s) {
      StageState& st = stages[s];
      apply_pending_remap(s);
      for (std::size_t r = 0; r < st.replicas.size(); ++r) {
        Replica& rep = st.replicas[r];
        if (rep.migrating || rep.down) continue;
        const bool remap_hold =
            st.pending_remap && st.pending_remap_replica == r;
        // Double buffering: receive the next item while computing.
        if (!remap_hold && !rep.receiving && rep.received.size() < 2 &&
            !st.waiting.empty()) {
          const std::uint64_t id = st.waiting.front();
          st.waiting.pop_front();
          rep.receiving = id;
          const OpToken token = tokens.alloc();
          submit_wave.push_back(OpRequest::transfer(
              token, item_at(id).location, rep.node, bytes_into(s)));
          ops.emplace(token, PendingOp{OpKind::StageIn, s, r, id});
        }
        if (!rep.computing && !rep.received.empty()) {
          const std::uint64_t id = rep.received.front();
          rep.received.pop_front();
          rep.computing = id;
          const OpToken token = tokens.alloc();
          submit_wave.push_back(OpRequest::compute(
              token, rep.node, spec.stages[s].work_per_item));
          ops.emplace(token, PendingOp{OpKind::StageCompute, s, r, id});
        }
      }
    }
    if (!submit_wave.empty()) {
      backend.submit_batch(std::move(submit_wave));
      submit_wave.clear();
    }
  };

  auto any_structural_in_flight = [&] {
    for (const auto& st : stages) {
      if (st.pending_remap) return true;
      for (const auto& rep : st.replicas)
        if (rep.migrating) return true;
    }
    return false;
  };

  // Structural action: farm out the bottleneck stage onto one more node.
  auto maybe_replicate = [&] {
    if (params_.replicate_imbalance_factor <= 0.0) return;
    if (report.replications >= params_.max_replications) return;
    if (spares.empty() || any_structural_in_flight()) return;
    std::vector<double> effective(depth, 0.0);
    for (std::size_t s = 0; s < depth; ++s) {
      if (stages[s].service_ewma.empty()) return;  // not warmed up yet
      effective[s] = stages[s].service_ewma.value() /
                     static_cast<double>(stages[s].replicas.size());
    }
    const double med = median(effective);
    const auto worst_it = std::max_element(effective.begin(), effective.end());
    const std::size_t worst =
        static_cast<std::size_t>(worst_it - effective.begin());
    if (*worst_it <= params_.replicate_imbalance_factor * med) return;
    if (stages[worst].items_since_structural <
        params_.replication_cooldown_items)
      return;
    // Grow the stage on the fittest live spare; seed it with stage state
    // from the primary replica.
    const auto best_it = best_live_spare();
    if (best_it == spares.end()) return;
    const NodeId target = *best_it;
    spares.erase(best_it);
    Replica rep;
    rep.node = target;
    rep.migrating = true;
    stages[worst].replicas.push_back(std::move(rep));
    stages[worst].items_since_structural = 0;
    const OpToken token = tokens.alloc();
    backend.submit_transfer(token, stages[worst].replicas.front().node,
                            target, Bytes{params_.stage_state_bytes});
    ops.emplace(token, PendingOp{OpKind::Migration, worst,
                                 stages[worst].replicas.size() - 1, 0});
    report.trace.record({backend.now(),
                         gridsim::TraceEventKind::StageReplicated, target,
                         TaskId::invalid(), static_cast<double>(worst),
                         "seeding"});
    GRASP_LOG_INFO("pipeline")
        << "stage " << worst << " replicating onto " << target.value << " ("
        << stages[worst].replicas.size() << " replicas)";
    ++report.replications;
  };

  auto consider_adaptation = [&] {
    // Structural replication has its own switch (replicate_imbalance_factor)
    // because it corrects the *program's* shape, not the environment;
    // adaptation_enabled gates the Algorithm-2 monitor/remap loop.
    if ((traits_.actions & kActionReplicateStage) != 0) maybe_replicate();
    if (!params_.adaptation_enabled) return;
    if ((traits_.actions & kActionRemapStage) == 0) return;
    if (report.remaps >= params_.max_remaps) return;
    if (spares.empty()) return;
    const MonitorVerdict verdict = exec_monitor.check(backend.now());
    if (verdict == MonitorVerdict::None) return;

    // Bottleneck replica: worst observed slowdown vs calibrated fitness.
    std::size_t worst_stage = 0, worst_replica = 0;
    double worst_ratio = 0.0;
    for (std::size_t s = 0; s < depth; ++s) {
      for (std::size_t r = 0; r < stages[s].replicas.size(); ++r) {
        const Replica& rep = stages[s].replicas[r];
        if (rep.latest_spm <= 0.0) continue;
        const double ratio = rep.latest_spm / known_spm(rep.node);
        if (ratio > worst_ratio) {
          worst_ratio = ratio;
          worst_stage = s;
          worst_replica = r;
        }
      }
    }
    StageState& st = stages[worst_stage];
    const Replica& rep = st.replicas[worst_replica];
    const auto best_it = best_live_spare();
    if (best_it == spares.end()) return;
    const double current_spm =
        rep.latest_spm > 0.0 ? rep.latest_spm : estimate_spm(rep.node);
    if (estimate_spm(*best_it) * params_.remap_advantage >= current_spm)
      return;  // no spare is convincingly better
    if (st.pending_remap || rep.migrating) return;
    const NodeId target = *best_it;
    spares.erase(best_it);
    spares.push_back(rep.node);  // old node becomes a spare
    st.pending_remap = target;
    st.pending_remap_replica = worst_replica;
  };

  // Admit nodes that joined while calibration ran: their tracker events are
  // already consumed, so hand them to the join path now the mapping exists.
  for (const NodeId n : joined_during_cal) handle_join(n);

  // Liveness tick: a one-shot backend timer, re-armed on every firing, so
  // membership is polled between completions too — a crash that stalls the
  // whole stream is noticed within one period, not at the next completion.
  OpToken tick_token = 0;
  auto arm_tick = [&] {
    if (!tracker || params_.membership_tick.value <= 0.0) return;
    tick_token = tokens.alloc();
    backend.submit_timer(tick_token, params_.membership_tick);
  };
  arm_tick();

  // ---- Main loop. -------------------------------------------------------
  consume_membership();
  while (report.items_completed < item_count) {
    schedule();
    const auto completion = backend.wait_next();
    if (!completion)
      throw std::logic_error("Pipeline: deadlock — items remain but nothing "
                             "in flight (stage lost with no spare?)");
    monitor.advance_to(backend.now());
    consume_membership();
    if (completion->is_timer) {
      if (tick_token != 0 && completion->token == tick_token) {
        tick_token = 0;
        arm_tick();
        // Stream-staleness SLO: the pipeline has no per-node heartbeats, so
        // the watchdog's heartbeat rule bounds the time since the last
        // completion or membership event (subject: the source node).
        if (watchdog)
          watchdog->check_heartbeat(source, backend.now().value,
                                    last_activity.value);
        if (ops.empty() && dead_tokens.empty()) {
          // Nothing in flight and no zombie pending.  Re-arming forever
          // would spin, so classify the lull: work schedule() can still
          // dispatch (progress resumes next iteration), a down stage
          // waiting for a joiner (keep ticking, bounded by patience), or
          // the dead end the nullopt branch reports on tick-free runs.
          bool waiting_for_join = false;
          for (const auto& st : stages)
            for (const auto& rep : st.replicas)
              if (rep.down) waiting_for_join = true;
          bool dispatchable = false;
          for (std::size_t s = 0; s < depth && !dispatchable; ++s) {
            const StageState& st = stages[s];
            bool live = false;
            for (const auto& rep : st.replicas)
              if (!rep.down && !rep.migrating) live = true;
            if (!live) continue;
            if (!st.waiting.empty() || (s == 0 && injected < item_count))
              dispatchable = true;
            for (const auto& rep : st.replicas)
              if (!rep.received.empty()) dispatchable = true;
          }
          if (!dispatchable) {
            if (!waiting_for_join) {
              backend.cancel_timer(tick_token);
              throw std::logic_error(
                  "Pipeline: deadlock — items remain but nothing "
                  "in flight (stage lost with no spare?)");
            }
            if (backend.now() - last_activity > effective_patience()) {
              backend.cancel_timer(tick_token);
              throw std::runtime_error(
                  "Pipeline: stage down with no spare and no joiner "
                  "within down_stage_patience");
            }
          }
        }
      }
      continue;
    }
    last_activity = backend.now();
    if (dead_tokens.erase(completion->token) > 0) {
      met.inc(rm.zombie_completions);
      continue;
    }
    const PendingOp* found = ops.find(completion->token);
    if (found == nullptr)
      throw std::logic_error("Pipeline: unknown completion token");
    const PendingOp op = *found;
    ops.erase(completion->token);

    switch (op.kind) {
      case OpKind::StageIn: {
        Replica& rep = stages[op.stage].replicas[op.replica];
        rep.receiving.reset();
        rep.received.push_back(op.item);
        item_at(op.item).location = rep.node;
        break;
      }
      case OpKind::StageCompute: {
        StageState& st = stages[op.stage];
        Replica& rep = st.replicas[op.replica];
        rep.computing.reset();
        const double service = completion->duration().value;
        const double work = spec.stages[op.stage].work_per_item.value;
        const double spm = service / std::max(1e-9, work);
        rep.latest_spm = spm;
        st.busy_seconds += service;
        st.service_sum += service;
        st.service_ewma.add(service);
        ++st.items_done;
        ++st.items_since_structural;
        exec_monitor.observe(rep.node, spm, backend.now());
        // Resequenced exit: emit in item-id order.  An item below
        // next_expected is a failure-triggered re-execution whose original
        // emission was retracted; it re-emits immediately.
        if (op.item < st.next_expected) {
          emit_downstream(op.stage, op.item);
        } else {
          st.done_buffer[op.item] = true;
          while (!st.done_buffer.empty() &&
                 st.done_buffer.begin()->first == st.next_expected) {
            st.done_buffer.erase(st.done_buffer.begin());
            emit_downstream(op.stage, st.next_expected);
            ++st.next_expected;
          }
        }
        consider_adaptation();
        break;
      }
      case OpKind::SinkOut: {
        ++report.items_completed;
        last_done = backend.now();
        latencies.push_back((backend.now() - item_at(op.item).entered).value);
        met.observe(h_item_latency, latencies.back());
        report.trace.record({backend.now(),
                             gridsim::TraceEventKind::ItemCompleted, source,
                             TaskId{op.item}, latencies.back(), ""});
        items.erase(op.item);
        break;
      }
      case OpKind::Migration: {
        StageState& st = stages[op.stage];
        Replica& rep = st.replicas[op.replica];
        rep.node = completion->node;
        rep.migrating = false;
        rep.latest_spm = 0.0;
        if (tracker && !tracker->is_member(rep.node)) {
          // The migration target died while state was in transit.
          handle_node_loss(rep.node, true);
          break;
        }
        arm_monitor();
        report.trace.record({backend.now(),
                             gridsim::TraceEventKind::StageRemapped, rep.node,
                             TaskId::invalid(),
                             static_cast<double>(op.stage), "resumed"});
        break;
      }
    }
  }

  if (tick_token != 0) backend.cancel_timer(tick_token);

  // ---- Report. ----------------------------------------------------------
  report.makespan = last_done;
  report.rounds = exec_monitor.rounds_completed();
  for (std::size_t s = 0; s < depth; ++s) {
    StageStats st;
    st.stage = spec.stages[s].id;
    st.node = stages[s].replicas.front().node;
    st.replicas = stages[s].replicas.size();
    st.items = stages[s].items_done;
    st.mean_service_s =
        stages[s].items_done > 0
            ? stages[s].service_sum / static_cast<double>(stages[s].items_done)
            : 0.0;
    st.busy_fraction = report.makespan.value > 0.0
                           ? stages[s].busy_seconds / report.makespan.value
                           : 0.0;
    report.stages.push_back(st);
    report.final_mapping.push_back(stages[s].replicas.front().node);
  }
  if (!latencies.empty()) {
    report.mean_latency_s = mean(latencies);
    report.p95_latency_s = quantile(latencies, 0.95);
  }
  report.output_in_order =
      std::is_sorted(emission_order.begin(), emission_order.end());
  // The resilience report is a registry snapshot (delta against the run
  // baseline, so a Telemetry reused across runs still yields per-run
  // numbers); mirror the pipeline scalars for dashboards/exporters.
  report.resilience = resil::from_snapshot(met.snapshot().diff(base_snap));
  met.set_counter(met.counter("pipeline.items_completed"),
                  report.items_completed);
  met.set_counter(met.counter("pipeline.remaps"), report.remaps);
  met.set_counter(met.counter("pipeline.replications"), report.replications);
  met.set_counter(met.counter("pipeline.rounds"), report.rounds);
  met.set(met.gauge("pipeline.makespan_s"), report.makespan.value);
  met.set(met.gauge("pipeline.mean_latency_s"), report.mean_latency_s);
  met.set(met.gauge("pipeline.p95_latency_s"), report.p95_latency_s);
  // Post-run blame diagnosis on the recorded spans (detail tier only).
  if (met.enabled() && !tel.spans.records().empty())
    obs::publish_blame(
        obs::analyze_blame(tel.spans.records(), report.makespan.value), met);
  if (flight != nullptr)
    flight->note(report.makespan.value, "run", "pipeline_end", source,
                 static_cast<double>(report.items_completed));
  return report;
}

}  // namespace grasp::core
