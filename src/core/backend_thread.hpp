// Wall-clock backend: one worker thread per grid node.
//
// Costs are realised physically: a compute op optionally runs the caller's
// real body, then waits out the remainder of the model-predicted duration
// scaled by `time_scale` (so a 400-virtual-second run can execute in
// 0.4 s of wall clock).  Transfers wait their scaled duration on a
// dedicated link thread pool.  Modelled waits are cancellable
// condition-variable deadline waits, not sleep_for: destruction interrupts
// them, so teardown returns promptly even when a chunk stalled by a
// simulated outage has hours of modelled time left (churn on real threads).
// Timers run on a dedicated deadline-heap thread and are delivered through
// the same completion stream.  This backend exists to show the identical
// skeleton logic driving real concurrency — the experiments use SimBackend.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/backend.hpp"
#include "gridsim/grid.hpp"

namespace grasp::core {

class ThreadBackend final : public Backend {
 public:
  struct Params {
    /// Wall seconds per virtual second (1e-3: 1000x faster than modelled).
    double time_scale = 1e-3;
    /// Run attached task bodies (real user work) before the scaled sleep.
    bool run_bodies = true;
  };

  ThreadBackend(const gridsim::Grid& grid, Params params);
  ~ThreadBackend() override;

  ThreadBackend(const ThreadBackend&) = delete;
  ThreadBackend& operator=(const ThreadBackend&) = delete;

  [[nodiscard]] Seconds now() const override;
  void submit_compute(OpToken token, NodeId node, Mops work,
                      std::function<void()> body = {}) override;
  void submit_transfer(OpToken token, NodeId from, NodeId to,
                       Bytes payload) override;
  void submit_timer(OpToken token, Seconds delay) override;
  bool cancel_timer(OpToken token) override;
  [[nodiscard]] double compute_progress(OpToken token) const override;
  [[nodiscard]] std::optional<Completion> wait_next() override;
  [[nodiscard]] std::size_t in_flight() const override;

 private:
  struct Job {
    OpToken token;
    NodeId report_node;
    Seconds model_duration;  ///< virtual-time cost, scaled into a wait
    std::function<void()> body;
  };
  struct WorkerQueue {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Job> jobs;
    bool stop = false;
  };
  struct TimerEntry {
    std::chrono::steady_clock::time_point deadline;
    std::uint64_t seq;  ///< FIFO among equal deadlines
    OpToken token;
    Seconds started;  ///< virtual submit time, reported in the Completion
  };
  /// Heap order for timer_heap_: earliest deadline on top, FIFO on ties.
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void worker_loop(WorkerQueue& queue);
  void timer_loop();
  void complete(const Job& job, Seconds started);
  void enqueue(WorkerQueue& queue, Job job);

  const gridsim::Grid* grid_;
  Params params_;
  std::chrono::steady_clock::time_point epoch_;

  std::vector<std::unique_ptr<WorkerQueue>> node_queues_;  // one per node
  std::unique_ptr<WorkerQueue> link_queue_;  // serialised transfer lane
  std::vector<std::thread> threads_;

  // Deadline-sorted pending timers, served by a dedicated thread.
  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<TimerEntry> timer_heap_;  // std::push_heap, earliest on top
  std::uint64_t timer_seq_ = 0;
  bool timer_stop_ = false;
  std::thread timer_thread_;

  mutable std::mutex ready_mutex_;
  std::condition_variable ready_cv_;
  std::deque<Completion> ready_;
  std::size_t in_flight_ = 0;
  std::size_t timers_pending_ = 0;  ///< armed but not yet in ready_

  /// Undelivered compute ops, for compute_progress.  `started` is invalid
  /// (negative) while the job still sits in its worker queue; `finished`
  /// flips when the worker enqueues the completion (the real body and the
  /// modelled wait are both done).  Guarded by ready_mutex_ (workers touch
  /// it only at job start and completion).
  struct ComputeState {
    Seconds model_duration;
    Seconds started{-1.0};
    bool finished = false;
  };
  std::unordered_map<OpToken, ComputeState> computes_;
};

}  // namespace grasp::core
