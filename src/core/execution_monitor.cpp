#include "core/execution_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "support/log.hpp"

namespace grasp::core {

const char* to_string(ThresholdPolicy::Kind kind) {
  switch (kind) {
    case ThresholdPolicy::Kind::AbsoluteMin: return "absolute_min";
    case ThresholdPolicy::Kind::RelativeMin: return "relative_min";
    case ThresholdPolicy::Kind::RelativeMean: return "relative_mean";
    case ThresholdPolicy::Kind::RelativeMax: return "relative_max";
  }
  return "unknown";
}

const char* to_string(MonitorVerdict verdict) {
  switch (verdict) {
    case MonitorVerdict::None: return "none";
    case MonitorVerdict::ThresholdExceeded: return "threshold_exceeded";
    case MonitorVerdict::RoundStale: return "round_stale";
  }
  return "unknown";
}

ExecutionMonitor::ExecutionMonitor(SkeletonTraits traits,
                                   ThresholdPolicy policy)
    : traits_(std::move(traits)),
      policy_(policy),
      round_times_(std::numeric_limits<double>::quiet_NaN()),
      latest_(std::numeric_limits<double>::quiet_NaN()) {
  if (policy_.z <= 0.0)
    throw std::invalid_argument("ExecutionMonitor: threshold must be positive");
}

void ExecutionMonitor::arm(double baseline_spm,
                           const std::vector<NodeId>& chosen, Seconds now) {
  if (chosen.empty())
    throw std::invalid_argument("ExecutionMonitor: empty chosen set");
  baseline_spm_ = baseline_spm;
  chosen_ = chosen;
  latest_.clear();
  begin_round(now);
}

void ExecutionMonitor::begin_round(Seconds now) {
  round_times_.clear();
  round_reported_ = 0;
  round_started_ = now;
}

void ExecutionMonitor::observe(NodeId node, double seconds_per_mop,
                               Seconds at) {
  (void)at;
  // Keep the *latest* time per node within the round, as Algorithm 2's
  // "collect t from Chosen nodes into T" implies one slot per node.
  double& slot = round_times_[node];
  if (std::isnan(slot)) ++round_reported_;
  slot = seconds_per_mop;
  latest_[node] = seconds_per_mop;
}

double ExecutionMonitor::threshold_spm() const {
  switch (policy_.kind) {
    case ThresholdPolicy::Kind::AbsoluteMin:
      return policy_.z;
    case ThresholdPolicy::Kind::RelativeMin:
    case ThresholdPolicy::Kind::RelativeMean:
    case ThresholdPolicy::Kind::RelativeMax:
      return policy_.z * baseline_spm_;
  }
  return policy_.z;
}

MonitorVerdict ExecutionMonitor::check(Seconds now) {
  // The bottleneck statistic (RelativeMax) must not wait for synchronised
  // rounds: a pipeline's upstream stages legitimately stop reporting once
  // their part of the stream has drained, which would gate the round
  // forever, and a *single* degraded observation already proves a
  // bottleneck.  Evaluate over the latest per-node observations instead.
  if (policy_.kind == ThresholdPolicy::Kind::RelativeMax) {
    const bool all_reported =
        std::all_of(chosen_.begin(), chosen_.end(), [&](NodeId n) {
          return !std::isnan(latest_.at_or_default(n));
        });
    if (!all_reported) return MonitorVerdict::None;
    double max_t = 0.0;
    for (const NodeId n : chosen_)
      max_t = std::max(max_t, latest_.at_or_default(n));
    ++rounds_;
    if (max_t > threshold_spm()) {
      ++triggers_;
      GRASP_LOG_INFO("monitor")
          << traits_.name << " bottleneck threshold breached: max="
          << max_t << " threshold=" << threshold_spm();
      begin_round(now);
      return MonitorVerdict::ThresholdExceeded;
    }
    return MonitorVerdict::None;
  }

  // Staleness: some chosen node has gone silent for the whole window.
  const bool round_complete =
      std::all_of(chosen_.begin(), chosen_.end(), [&](NodeId n) {
        return !std::isnan(round_times_.at_or_default(n));
      });
  if (!round_complete) {
    if (policy_.stale_after > 0.0 &&
        (now - round_started_).value > policy_.stale_after &&
        round_reported_ > 0) {
      ++rounds_;
      ++triggers_;
      GRASP_LOG_INFO("monitor") << traits_.name << " round stale after "
                                << (now - round_started_).value << "s";
      begin_round(now);
      return MonitorVerdict::RoundStale;
    }
    return MonitorVerdict::None;
  }

  ++rounds_;
  double min_t = std::numeric_limits<double>::infinity();
  double max_t = 0.0;
  double sum = 0.0;
  for (const NodeId n : chosen_) {
    const double t = round_times_.at_or_default(n);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
    sum += t;
  }
  const double mean_t = sum / static_cast<double>(chosen_.size());
  double statistic = min_t;
  if (policy_.kind == ThresholdPolicy::Kind::RelativeMean) statistic = mean_t;
  if (policy_.kind == ThresholdPolicy::Kind::RelativeMax) statistic = max_t;

  begin_round(now);
  if (statistic > threshold_spm()) {
    ++triggers_;
    GRASP_LOG_INFO("monitor")
        << traits_.name << " threshold breached: statistic=" << statistic
        << " threshold=" << threshold_spm();
    return MonitorVerdict::ThresholdExceeded;
  }
  return MonitorVerdict::None;
}

}  // namespace grasp::core
