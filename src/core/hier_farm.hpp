// Hierarchical farm-of-farms: the sharded coordinator.
//
// The flat TaskFarm funnels every chunk, heartbeat and monitor sample
// through one farmer, so its event-loop load grows linearly with the
// worker count — fine for tens of nodes, the ceiling for thousands.  This
// engine splits the pool into worker *shards*, each owned by a sub-farmer
// that runs the familiar GRASP loop locally (per-shard calibration,
// demand-driven chunked dispatch, failure detection, exactly-once chunk
// ledger), while the root farms *chunks of chunks*: super-grants of tasks
// flow root -> sub-farmer on demand, results flow back in batches, and
// monitor rounds aggregate along an arity-k tree over the sub-farmers
// (mp/tree_reduce.hpp topology), so the root absorbs O(shards / arity)
// messages per round instead of O(workers).
//
// Failure model:
//   * workers — per-shard failure detector + chunk ledger: lost chunks
//     are surrendered exactly once and their unfinished tasks re-queued
//     locally (the root never hears about a worker crash).
//   * sub-farmers — the root's detector watches only the K sub-farmers.
//     Each sub-farmer replicates its completion log to in-shard standbys
//     (resil::ReplicaLog, flushed on every liveness tick); on a crash the
//     best-caught-up live standby is promoted *within the shard*, the
//     un-replicated suffix of the log is rolled back (retracted
//     completions re-queued, their results charged as lost) and in-flight
//     chunks of the orphaned shard are re-dispatched.  No root-side
//     standby per shard exists: promotion is a shard-local affair.
//   * the root itself is assumed reliable (the PR-5 replicated-farmer
//     machinery applies unchanged one level up; wiring it is future work).
//
// Static mode runs the same transport with adaptation off: no probes, no
// monitor rounds, fixed chunk size — the classic baseline the paper's
// GRASP rows are measured against.
#pragma once

#include <cstddef>
#include <vector>

#include "core/backend.hpp"
#include "gridsim/grid.hpp"
#include "gridsim/trace.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "resil/failure_detector.hpp"
#include "workloads/task.hpp"

namespace grasp::core {

enum class HierMode {
  Grasp,   ///< per-shard calibration + adaptive chunking + monitor rounds
  Static,  ///< fixed chunks, no probes, no adaptation
};

struct HierFarmParams {
  HierMode mode = HierMode::Grasp;

  // ---------------------------------------------------------- sharding
  /// Target workers per shard; the shard count is
  /// clamp(ceil(workers / workers_per_shard), 1, max_shards).
  std::size_t workers_per_shard = 8;
  /// Root fan-out ceiling.  Beyond max_shards x workers_per_shard workers
  /// the shards grow instead — the root's load stays bounded either way.
  std::size_t max_shards = 16;

  // ------------------------------------------------- intra-shard chunks
  /// Tasks per dispatch in Static mode (and before a node is calibrated).
  std::size_t chunk_size = 4;
  /// Grasp: per-node chunks sized so one dispatch costs about this long.
  double target_chunk_seconds = 8.0;
  std::size_t max_chunk = 64;

  // ------------------------------------------------------- super-grants
  /// The root splits the task set into about this many super-grants in
  /// total, independent of scale: each grant is ceil(T / grant_rounds)
  /// tasks and shards pull grants on demand, so a fast shard simply pulls
  /// more often.  This is what keeps the root's event rate flat in W.
  std::size_t grant_rounds = 32;

  // ------------------------------------------- monitoring / adaptation
  /// Grasp: period of the tree-aggregated monitor round (0 disables).
  Seconds monitor_period{8.0};
  /// Fan-in of the sub-farmer reduction tree.
  std::size_t reduce_arity = 4;
  /// Recalibrate a shard when its observed spm drifts from the calibrated
  /// baseline by more than this fraction.
  double drift_threshold = 0.5;
  std::size_t max_recalibrations = 16;

  // ---------------------------------------------------------- resilience
  /// Master switch; active only when the grid carries a ChurnTimeline.
  bool resilience = true;
  /// Worker-level detector (one instance per shard, owned by its
  /// sub-farmer) and the root's sub-farmer watch (same settings).  The
  /// detection mode threads through whole: with DetectionMode::Accrual
  /// every per-shard detector keeps per-node inter-arrival statistics for
  /// its own workers, and the root's watch does the same for the K
  /// sub-farmers — the `timeout + period` hard cap bounds promotion
  /// latency in either mode.
  resil::FailureDetector::Params detector;
  /// Replica-log standbys per shard (clamped to the shard size - 1).
  std::size_t standby_count = 2;
  /// Pause between promotion and the new sub-farmer resuming dispatch.
  Seconds promotion_handshake{1.0};

  /// Root location; invalid means pool.front().  The root coordinates
  /// only — it is not a member of any shard.
  NodeId root;

  /// Online SLO bounds, evaluated on the liveness tick: heartbeat
  /// staleness is probed per shard (alert subjects "shard.<k>.node.<id>")
  /// and for the root's sub-farmer watch ("root.node.<id>").  All-zero
  /// disables the watchdogs.
  obs::SloRules slos;

  /// Observability sink (non-owning; may be null).  Per-shard counters
  /// land under "shard.<k>." prefixes and each shard's chunk spans are
  /// grafted as a subtree when detail is enabled.
  obs::Telemetry* telemetry = nullptr;
};

/// Per-shard accounting, in shard-index order.
struct ShardSummary {
  NodeId sub_farmer;              ///< coordinator after any promotions
  std::size_t workers = 0;        ///< members at partition time
  std::size_t tasks_completed = 0;
  std::size_t grants = 0;         ///< super-grants pulled from the root
  std::size_t events = 0;         ///< completions this shard's loop handled
  std::size_t promotions = 0;
  std::size_t redispatched = 0;   ///< tasks returned to a queue by a crash
  double capacity_mops = 0.0;     ///< calibrated aggregate speed (Grasp)
};

struct HierFarmReport {
  Seconds makespan{0.0};
  std::size_t tasks_completed = 0;
  std::size_t calibration_tasks = 0;  ///< tasks consumed by probe chunks
  std::size_t shards = 0;
  /// Event attribution: every backend completion is handled by exactly
  /// one coordinator.  root_events is the scalability headline — it must
  /// stay near-constant as the worker count grows.
  std::size_t root_events = 0;
  std::size_t shard_events = 0;
  std::size_t monitor_rounds = 0;       ///< reductions that reached the root
  std::size_t reduction_messages = 0;   ///< modeled tree hops
  std::size_t recalibrations = 0;
  std::size_t promotions = 0;           ///< sub-farmer failovers
  std::size_t redispatched = 0;
  std::size_t results_lost = 0;   ///< completions retracted by a rollback
  std::size_t zombie_completions = 0;
  std::vector<ShardSummary> shard_summaries;
  gridsim::TraceRecorder trace;

  [[nodiscard]] double throughput() const {
    return makespan.value > 0.0
               ? static_cast<double>(tasks_completed) / makespan.value
               : 0.0;
  }
  [[nodiscard]] double root_events_per_vsec() const {
    return makespan.value > 0.0
               ? static_cast<double>(root_events) / makespan.value
               : 0.0;
  }
};

/// clamp(ceil(workers / workers_per_shard), 1, max_shards).
[[nodiscard]] std::size_t shard_count_for(std::size_t workers,
                                          std::size_t workers_per_shard,
                                          std::size_t max_shards);

/// LPT-greedy partition of `workers` into `shard_count` shards balanced
/// by `speeds` (parallel to `workers`): sort by speed descending (ties by
/// id), assign each to the currently lightest shard (ties by index).
/// Each shard's members come out in assignment order, so members.front()
/// is its fastest node — the initial sub-farmer.  Deterministic.
[[nodiscard]] std::vector<std::vector<NodeId>> plan_shards(
    const std::vector<NodeId>& workers, const std::vector<double>& speeds,
    std::size_t shard_count);

class HierFarm {
 public:
  explicit HierFarm(HierFarmParams params);

  /// Execute `tasks` over `pool` (root = params.root or pool.front(),
  /// remaining members sharded).  Blocks on `backend` until every task
  /// has completed and been reported to the root.
  [[nodiscard]] HierFarmReport run(Backend& backend,
                                   const gridsim::Grid& grid,
                                   const std::vector<NodeId>& pool,
                                   const workloads::TaskSet& tasks);

  [[nodiscard]] const HierFarmParams& params() const { return params_; }

 private:
  HierFarmParams params_;
};

}  // namespace grasp::core
