// Adaptive task farm (GRASP instantiation [6]).
//
// Demand-driven farmer/worker execution over a calibrated worker set, with
// the full Algorithm 1 + Algorithm 2 loop:
//
//   calibrate -> dispatch (demand-driven, chunked) -> monitor rounds ->
//   threshold breach -> drain -> recalibrate -> resume
//
// plus the two farm-specific actions its traits admit: straggler reissue
// (duplicate a late chunk on an idle worker, first completion wins) and
// adaptive chunk sizing (per-node granularity tracks forecast speed so every
// dispatch costs roughly the same wall time).
#pragma once

#include <optional>
#include <vector>

#include "core/backend.hpp"
#include "core/calibration.hpp"
#include "core/execution_monitor.hpp"
#include "core/skeleton_traits.hpp"
#include "core/task_source.hpp"
#include "gridsim/grid.hpp"
#include "gridsim/trace.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "perfmon/monitor.hpp"
#include "resil/elastic_pool.hpp"
#include "resil/failover.hpp"
#include "resil/failure_detector.hpp"
#include "resil/report.hpp"

namespace grasp::core {

/// Resilience/elasticity policy for a farm run.  Active only when `enabled`
/// and the grid carries a ChurnTimeline; a churn-free grid behaves exactly
/// as before.  The correctness floor (zombie completions discarded, their
/// tasks re-queued) applies whenever the grid has a timeline, because it is
/// physics, not policy: a chunk that was on a node when the node died never
/// really completed.
struct FarmResilience {
  bool enabled = false;
  resil::FailureDetector::Params detector;
  resil::ElasticPool::Params pool;
  /// Rerun Algorithm 1 over the surviving pool after a detected crash.
  bool recalibrate_on_crash = true;
  /// Fast-path probe-and-admit for joined nodes (elastic growth).  Off,
  /// joiners can only enter through a full recalibration — with adaptation
  /// also off, the worker set never grows (the fixed-set ablation).
  bool elastic_join = true;
  /// Tasks in a newcomer's fast-path calibration probe chunk.
  std::size_t probe_tasks = 1;
  /// Partial-result checkpoint interval.  Workers ship (chunk, tasks_done)
  /// progress piggybacked on the heartbeat path; the farmer records the
  /// high-water mark per chunk and, on a crash, re-dispatches only the
  /// unfinished suffix, charging only un-checkpointed tasks as wasted.
  /// Rounded to the nearest multiple of the detector's heartbeat_period
  /// (minimum one beat); zero disables checkpointing.  When checkpointing
  /// is on and the pool's evict_ratio is set, progress reports double as
  /// execution observations, so a persistently crawling chunk can trigger a
  /// mid-chunk eviction whose work resumes from its last checkpoint.
  Seconds checkpoint_period = Seconds::zero();
  /// Replicated-farmer failover.  With standby_count > 0 the farmer is no
  /// longer assumed reliable: hot standbys shadow its state through a
  /// replication log flushed on every heartbeat tick, and when the farmer
  /// dies the lowest-id live standby is promoted within
  /// timeout + heartbeat_period + handshake of the crash.  The `detector`
  /// member of these params is ignored — the farmer-watch always rides the
  /// same heartbeat settings as the worker detector above.
  resil::FailoverCoordinator::Params failover;
};

/// Waste-aware dispatch economics.  Off (default), every speculative
/// decision uses the fixed-margin rules exactly as before:
/// `straggler_factor`, `tail_steal_margin` and the pool's strike-based
/// `evict_ratio`.  On, the farm maintains per-node service-time quantiles
/// (resil::CostModel, fed by calibration and every chunk completion) and
/// each speculative action must pass an explicit
/// expected-savings-vs-expected-waste test:
///
///   * reissue / tail steal — duplicate a chunk only when
///     E[saved virtual seconds] > reissue_waste_budget * E[duplicated mops],
///     where the holder's remaining time comes from its pessimistic
///     service-time quantile and the relief cost from the idle candidate's
///     median;
///   * mid-chunk eviction — abandon a crawling chunk only when staying
///     (remaining mops at the observed pace) costs more than
///     evict_break_even times redoing the un-checkpointed suffix on a
///     typical pool node;
///   * chunk exposure — under an observed crash hazard, cap each
///     dispatch's work so its expected un-checkpointed loss stays within
///     exposure_budget_mops (no observed crashes, no cap).
///
/// Decisions the budget rejects are counted (reissues_suppressed) and
/// traced (ReissueSuppressed), so the suppressed-vs-taken ratio is
/// visible per run.
struct FarmEconomics {
  bool enabled = false;
  /// Seconds of expected saving demanded per Mop of duplicated work
  /// before a speculative reissue is allowed.  0 accepts any positive
  /// saving (pure latency greed); larger values trade tail latency for
  /// less duplicated compute.  The default demands a couple of virtual
  /// seconds of saving on a typical few-hundred-Mop chunk — enough to
  /// drop break-even twins, small enough not to suppress the tail steals
  /// that pay for themselves.
  double reissue_waste_budget = 0.005;
  /// Holder-side pessimism: the holder's expected finish uses this
  /// quantile of its observed service-time distribution.
  double holder_quantile = 0.9;
  /// Relief-side realism: the idle candidate's redo cost uses this
  /// quantile of its distribution.
  double relief_quantile = 0.5;
  /// Below this many per-node samples the pool-wide distribution backs
  /// the node (and before any samples, the calibration estimate).
  std::size_t min_samples = 4;
  /// Mid-chunk eviction break-even: evict when expected remaining seconds
  /// on the holder exceed this multiple of the redo-from-checkpoint cost.
  double evict_break_even = 1.5;
  /// Expected wasted (un-checkpointed, lost-to-crash) Mops tolerated per
  /// dispatch; caps chunk size once a crash hazard has been observed.
  /// 0 disables the cap.  Sized so the cap binds only under genuinely
  /// harsh hazard rates (roughly one crash per node per couple of
  /// minutes at typical service times) — a tight budget shreds chunks
  /// into single tasks and the per-dispatch transfer overhead dwarfs the
  /// waste it avoids.
  double exposure_budget_mops = 30.0;
};

struct FarmParams {
  CalibrationParams calibration;
  ThresholdPolicy threshold;
  /// Monitor daemon settings (period, forecaster, sensor noise).
  perfmon::MonitorDaemon::Params monitor;

  /// Tasks per dispatch when adaptive chunking is off.
  std::size_t chunk_size = 1;
  /// Per-node chunk sizing toward `target_chunk_seconds` per dispatch.
  bool adaptive_chunking = false;
  double target_chunk_seconds = 5.0;
  std::size_t max_chunk = 64;

  /// Master switch for Algorithm 2 (false = calibrate once, never adapt;
  /// with select_fraction = 1 this is the classic demand-driven farm).
  bool adaptation_enabled = true;
  std::size_t max_recalibrations = 16;

  /// Duplicate chunks that exceed straggler_factor x their expected time
  /// when idle capacity exists.
  bool reissue_stragglers = true;
  double straggler_factor = 4.0;
  /// Tail-steal margin: with the queue dry, an idle node may duplicate a
  /// chunk whose expected finish is further out than `tail_steal_margin`
  /// times the idle node's own redo cost.  Must exceed 1 (at exactly 1 the
  /// steal breaks even and every tail chunk would be duplicated).
  double tail_steal_margin = 1.5;

  /// Waste-aware dispatch economics (quantile cost model); defaults off,
  /// preserving the fixed-margin behaviour above bit for bit.
  FarmEconomics econ;

  /// Farmer location; invalid means pool.front().
  NodeId root;

  /// Node-churn handling (crash recovery + elastic worker set).
  FarmResilience resilience;

  /// Online SLO bounds, evaluated on the farm's liveness ticks (see
  /// obs/watchdog.hpp).  All-zero (the default) disables the watchdog
  /// entirely.  Observation only — breaches alert, they never steer.
  obs::SloRules slos;

  /// Observability sink (non-owning; must outlive the run).  The run
  /// registers its counters/histograms there and records chunk spans
  /// against the backend's clock.  Null: the farm uses a private
  /// detail-disabled instance — counters still drive the report (it is
  /// always a registry snapshot), histograms and spans are skipped.
  obs::Telemetry* telemetry = nullptr;
};

struct FarmReport {
  Seconds makespan;                ///< time when the last task first finished
  std::size_t tasks_completed = 0;
  std::size_t calibration_tasks = 0;  ///< completed inside calibrations
  std::size_t recalibrations = 0;
  std::size_t reissues = 0;
  /// Speculative reissues the economic waste budget rejected (0 unless
  /// econ.enabled).
  std::size_t reissues_suppressed = 0;
  /// Mid-chunk evictions taken by the checkpoint-vs-redo break-even rule
  /// (0 unless econ.enabled; also counted in resilience.evictions).
  std::size_t econ_evictions = 0;
  /// Dispatches whose chunk was shrunk by the crash-exposure cap.
  std::size_t econ_chunk_caps = 0;
  std::size_t chunk_resizes = 0;
  std::size_t monitor_samples = 0;
  std::size_t rounds = 0;
  double final_baseline_spm = 0.0;
  std::vector<NodeId> final_chosen;
  resil::ResilienceReport resilience;  ///< zeros on churn-free runs
  gridsim::TraceRecorder trace;

  [[nodiscard]] double throughput() const {
    return makespan.value > 0.0
               ? static_cast<double>(tasks_completed) / makespan.value
               : 0.0;
  }
};

class TaskFarm {
 public:
  explicit TaskFarm(FarmParams params);

  /// Execute `tasks` over `pool`.  The grid reference is used only for the
  /// monitor daemon's sensors; all costs flow through `backend`.
  ///
  /// Since the GridService layer landed this is a thin wrapper: it stands
  /// up a private single-tenant service, submits one FarmJob and waits.
  /// With exactly one job and no scheduled arrivals the service runs the
  /// engine inline on the caller's thread against the real backend, so the
  /// wrapper is observably identical to calling run_engine directly.
  [[nodiscard]] FarmReport run(Backend& backend, const gridsim::Grid& grid,
                               const std::vector<NodeId>& pool,
                               const workloads::TaskSet& tasks);

  /// The farm engine proper: the full calibrate/dispatch/adapt loop,
  /// blocking on `backend` until the task set completes.  Called by the
  /// service layer (under a job-scoped backend proxy when multiple tenants
  /// share the pool); callers that want the classic standalone behaviour
  /// use run().
  [[nodiscard]] FarmReport run_engine(Backend& backend,
                                      const gridsim::Grid& grid,
                                      const std::vector<NodeId>& pool,
                                      const workloads::TaskSet& tasks);

  [[nodiscard]] const FarmParams& params() const { return params_; }

 private:
  struct Assignment {
    std::vector<workloads::TaskSpec> chunk;
    NodeId node;
    Seconds dispatched;
    /// When the compute phase began (the input transfer is excluded from
    /// mid-chunk speed estimates; zero until the Input phase completes).
    Seconds compute_started;
    enum class Phase { Input, Compute, Output } phase = Phase::Input;
    bool is_reissue = false;
    bool is_probe = false;   ///< newcomer fast-path calibration chunk
    bool duplicated = false;  ///< a reissue twin of this chunk exists
    /// A suppressed-reissue trace/count was already emitted for this chunk
    /// (the scan re-evaluates every candidate each round; only the first
    /// rejection is reported).
    bool suppress_noted = false;
    obs::SpanId span = 0;    ///< dispatch→complete span (0 when disabled)
    Mops work() const {
      Mops total = Mops::zero();
      for (const auto& t : chunk) total += t.work;
      return total;
    }
  };

  FarmParams params_;
  SkeletonTraits traits_;
};

}  // namespace grasp::core
