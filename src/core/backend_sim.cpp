#include "core/backend_sim.hpp"

#include <algorithm>

namespace grasp::core {

SimBackend::SimBackend(const gridsim::Grid& grid) : grid_(&grid) {}

Seconds SimBackend::now() const { return events_.now(); }

void SimBackend::submit_compute(OpToken token, NodeId node, Mops work,
                                std::function<void()> body) {
  // Real payloads are the threaded backend's job; in simulation the model
  // is authoritative and any attached body is deliberately not run.
  (void)body;
  const Seconds start = events_.now();
  const Seconds duration = grid_->node(node).compute_time(work, start);
  ++in_flight_;
  computes_.emplace(token, ComputeWindow{node, work, start});
  events_.schedule_after(duration, [this, token, node, start] {
    ready_.push_back(Completion{token, node, start, events_.now()});
  });
}

double SimBackend::compute_progress(OpToken token) const {
  const auto it = computes_.find(token);
  if (it == computes_.end()) return 0.0;
  const ComputeWindow& w = it->second;
  if (w.work.value <= 0.0) return 1.0;
  const Mops done =
      grid_->node(w.node).work_done(w.start, events_.now());
  return std::clamp(done.value / w.work.value, 0.0, 1.0);
}

void SimBackend::submit_transfer(OpToken token, NodeId from, NodeId to,
                                 Bytes payload) {
  const Seconds start = events_.now();
  const Seconds duration = grid_->transfer_time(from, to, payload, start);
  ++in_flight_;
  events_.schedule_after(duration, [this, token, to, start] {
    ready_.push_back(Completion{token, to, start, events_.now()});
  });
}

void SimBackend::submit_timer(OpToken token, Seconds delay) {
  const Seconds start = events_.now();
  const auto id = events_.schedule_after(delay, [this, token, start] {
    timers_.erase(token);
    ready_.push_back(
        Completion{token, NodeId::invalid(), start, events_.now(), true});
  });
  timers_.emplace(token, id);
}

bool SimBackend::cancel_timer(OpToken token) {
  const auto it = timers_.find(token);
  if (it != timers_.end()) {
    events_.cancel(it->second);
    timers_.erase(it);
    return true;
  }
  // Fired but undelivered: scrub it from the ready queue.
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (it->is_timer && it->token == token) {
      ready_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<Completion> SimBackend::wait_next() {
  while (ready_.empty()) {
    if (!events_.step()) return std::nullopt;
  }
  const Completion c = ready_.front();
  ready_.pop_front();
  if (!c.is_timer) {
    --in_flight_;
    computes_.erase(c.token);
  }
  return c;
}

std::size_t SimBackend::in_flight() const { return in_flight_; }

}  // namespace grasp::core
