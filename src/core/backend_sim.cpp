#include "core/backend_sim.hpp"

#include <algorithm>

namespace grasp::core {

SimBackend::SimBackend(const gridsim::Grid& grid) : grid_(&grid) {}

Seconds SimBackend::now() const { return events_.now(); }

void SimBackend::push_ready(const Completion& c) {
  // Recycle the vector once fully drained so steady-state delivery never
  // reallocates: capacity reached during the run's widest wave is kept.
  if (ready_head_ == ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  ready_.push_back(c);
}

void SimBackend::submit_compute(OpToken token, NodeId node, Mops work,
                                std::function<void()> body) {
  // Real payloads are the threaded backend's job; in simulation the model
  // is authoritative and any attached body is deliberately not run.
  (void)body;
  const Seconds start = events_.now();
  const Seconds duration = grid_->node(node).compute_time(work, start);
  ++in_flight_;
  computes_.emplace(token, ComputeWindow{node, work, start});
  events_.schedule_after(duration, [this, token, node, start] {
    push_ready(Completion{token, node, start, events_.now()});
  });
}

double SimBackend::compute_progress(OpToken token) const {
  const ComputeWindow* w = computes_.find(token);
  if (w == nullptr) return 0.0;
  if (w->work.value <= 0.0) return 1.0;
  const Mops done = grid_->node(w->node).work_done(w->start, events_.now());
  return std::clamp(done.value / w->work.value, 0.0, 1.0);
}

void SimBackend::submit_transfer(OpToken token, NodeId from, NodeId to,
                                 Bytes payload) {
  const Seconds start = events_.now();
  const Seconds duration = grid_->transfer_time(from, to, payload, start);
  ++in_flight_;
  events_.schedule_after(duration, [this, token, to, start] {
    push_ready(Completion{token, to, start, events_.now()});
  });
}

void SimBackend::submit_timer(OpToken token, Seconds delay) {
  const Seconds start = events_.now();
  const auto id = events_.schedule_after(delay, [this, token, start] {
    timers_.erase(token);
    push_ready(
        Completion{token, NodeId::invalid(), start, events_.now(), true});
  });
  timers_.emplace(token, id);
}

void SimBackend::submit_batch(std::vector<OpRequest> requests) {
  // Resolve every operation's duration first, then hand the whole wave to
  // the event queue in one bulk insert.  Durations depend only on the
  // current (unchanged) virtual time, and schedule_batch assigns insertion
  // sequences in order, so this is bit-for-bit the same schedule as
  // submitting one at a time.  All throwing work (model lookups, duration
  // resolution, validation) happens before any backend state changes, so a
  // bad request rejects the whole wave with no effect — in_flight_ and the
  // flat tables never drift from what the event queue holds.
  const Seconds start = events_.now();
  std::vector<gridsim::EventQueue::BatchItem> items;
  items.reserve(requests.size());
  for (OpRequest& r : requests) {
    switch (r.kind) {
      case OpRequest::Kind::Compute: {
        const Seconds duration = grid_->node(r.node).compute_time(r.work, start);
        items.push_back({start + duration,
                         [this, token = r.token, node = r.node, start] {
                           push_ready(Completion{token, node, start,
                                                 events_.now()});
                         }});
        break;
      }
      case OpRequest::Kind::Transfer: {
        const Seconds duration =
            grid_->transfer_time(r.from, r.to, r.payload, start);
        items.push_back({start + duration,
                         [this, token = r.token, to = r.to, start] {
                           push_ready(Completion{token, to, start,
                                                 events_.now()});
                         }});
        break;
      }
      case OpRequest::Kind::Timer: {
        if (r.delay.value < 0.0)
          throw std::invalid_argument("SimBackend: negative timer delay");
        items.push_back({start + r.delay,
                         [this, token = r.token, start] {
                           timers_.erase(token);
                           push_ready(Completion{token, NodeId::invalid(),
                                                 start, events_.now(), true});
                         }});
        break;
      }
    }
  }
  std::vector<gridsim::EventQueue::EventId> ids(items.size());
  events_.schedule_batch(items, ids.data());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const OpRequest& r = requests[i];
    switch (r.kind) {
      case OpRequest::Kind::Compute:
        ++in_flight_;
        computes_.emplace(r.token, ComputeWindow{r.node, r.work, start});
        break;
      case OpRequest::Kind::Transfer:
        ++in_flight_;
        break;
      case OpRequest::Kind::Timer:
        timers_.emplace(r.token, ids[i]);
        break;
    }
  }
}

bool SimBackend::cancel_timer(OpToken token) {
  const auto [found, event] = timers_.take(token);
  if (found) {
    events_.cancel(event);
    return true;
  }
  // Fired but undelivered: scrub it from the ready queue.
  for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
    if (ready_[i].is_timer && ready_[i].token == token) {
      ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::optional<Completion> SimBackend::wait_next() {
  while (ready_head_ == ready_.size()) {
    if (!events_.step()) return std::nullopt;
  }
  const Completion c = ready_[ready_head_++];
  if (!c.is_timer) {
    --in_flight_;
    computes_.erase(c.token);
  }
  return c;
}

std::size_t SimBackend::in_flight() const { return in_flight_; }

}  // namespace grasp::core
