#include "core/task_farm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/log.hpp"

namespace grasp::core {

TaskFarm::TaskFarm(FarmParams params) : params_(std::move(params)),
                                        traits_(task_farm_traits()) {
  if (params_.chunk_size == 0)
    throw std::invalid_argument("TaskFarm: chunk_size must be positive");
  if (params_.straggler_factor <= 1.0)
    throw std::invalid_argument("TaskFarm: straggler_factor must exceed 1");
}

FarmReport TaskFarm::run(Backend& backend, const gridsim::Grid& grid,
                         const std::vector<NodeId>& pool,
                         const workloads::TaskSet& tasks) {
  if (pool.empty()) throw std::invalid_argument("TaskFarm: empty pool");
  const NodeId root =
      params_.root.is_valid() ? params_.root : pool.front();

  FarmReport report;
  TaskSource source(tasks);
  TokenAllocator tokens;

  // Mean task work, used for chunk sizing and straggler expectations.
  const double mean_work =
      tasks.total_work().value / static_cast<double>(tasks.size());

  perfmon::MonitorDaemon::Params mon_params = params_.monitor;
  mon_params.root = root;
  perfmon::MonitorDaemon monitor(grid, pool, mon_params);

  CalibrationParams cal_params = params_.calibration;
  if (!cal_params.root.is_valid()) cal_params.root = root;
  Calibrator calibrator(traits_, cal_params);

  ExecutionMonitor exec_monitor(traits_, params_.threshold);

  // ---- Phase: calibration (Algorithm 1) -------------------------------
  CalibrationResult calibration =
      calibrator.run(backend, pool, source, &monitor, &report.trace, tokens);
  report.calibration_tasks += calibration.tasks_consumed;
  exec_monitor.arm(calibration.baseline_spm, calibration.chosen,
                   backend.now());

  // Per-node performance estimate (seconds per Mop), seeded by calibration
  // and refreshed by every completion; drives chunking and stragglers.
  std::unordered_map<NodeId, double> node_spm;
  for (const auto& s : calibration.ranking) node_spm[s.node] = s.adjusted_spm;
  // Per-node current chunk size (adaptive chunking).
  std::unordered_map<NodeId, std::size_t> node_chunk;
  for (const NodeId n : pool) node_chunk[n] = params_.chunk_size;

  std::vector<NodeId> chosen = calibration.chosen;
  std::unordered_map<NodeId, bool> busy;
  for (const NodeId n : pool) busy[n] = false;

  std::unordered_map<OpToken, Assignment> in_flight;

  Seconds finish_time = Seconds::zero();
  bool finished = false;
  std::size_t recalibrations = 0;

  // Wrap the caller's per-task payload (if any) around a chunk: the
  // threaded backend runs it on the worker thread, the simulator ignores it.
  auto make_chunk_body =
      [&](const std::vector<workloads::TaskSpec>& chunk) -> std::function<void()> {
    if (!params_.calibration.task_body) return {};
    return [fn = params_.calibration.task_body, chunk] {
      for (const auto& t : chunk) fn(t);
    };
  };

  auto spm_estimate = [&](NodeId n) {
    const auto it = node_spm.find(n);
    if (it != node_spm.end() && it->second > 0.0) return it->second;
    return std::max(1e-9, calibration.baseline_spm);
  };

  auto chunk_for = [&](NodeId n) -> std::size_t {
    if (!params_.adaptive_chunking) return params_.chunk_size;
    const double per_task = spm_estimate(n) * mean_work;
    if (per_task <= 0.0) return params_.chunk_size;
    const auto ideal = static_cast<std::size_t>(
        std::llround(params_.target_chunk_seconds / per_task));
    const std::size_t clamped =
        std::clamp<std::size_t>(ideal, 1, params_.max_chunk);
    if (clamped != node_chunk[n]) {
      node_chunk[n] = clamped;
      ++report.chunk_resizes;
      report.trace.record({backend.now(),
                           gridsim::TraceEventKind::ChunkResized, n,
                           TaskId::invalid(), static_cast<double>(clamped),
                           "chunk"});
    }
    return clamped;
  };

  auto dispatch_chunk = [&](NodeId node, std::vector<workloads::TaskSpec> chunk,
                            bool is_reissue) {
    Assignment a;
    a.chunk = std::move(chunk);
    a.node = node;
    a.dispatched = backend.now();
    a.is_reissue = is_reissue;
    Bytes input = Bytes::zero();
    for (const auto& t : a.chunk) input += t.input;
    const OpToken token = tokens.alloc();
    backend.submit_transfer(token, root, node, input);
    for (const auto& t : a.chunk)
      report.trace.record({backend.now(),
                           is_reissue ? gridsim::TraceEventKind::TaskReissued
                                      : gridsim::TraceEventKind::TaskDispatched,
                           node, t.id, t.work.value, ""});
    busy[node] = true;
    in_flight.emplace(token, std::move(a));
  };

  auto dispatch_to_idle = [&] {
    for (const NodeId n : chosen) {
      if (source.empty()) break;
      if (busy[n]) continue;
      const std::size_t want = chunk_for(n);
      std::vector<workloads::TaskSpec> chunk;
      while (chunk.size() < want && !source.empty())
        chunk.push_back(source.pop());
      if (!chunk.empty()) dispatch_chunk(n, std::move(chunk), false);
    }
  };

  // Straggler scan: when the queue is dry, duplicate late chunks onto idle
  // chosen workers (first completion wins).
  auto maybe_reissue = [&] {
    if (!params_.reissue_stragglers || !source.empty()) return;
    if ((traits_.actions & kActionReissueTask) == 0) return;
    // Idle chosen workers, fastest first.
    std::vector<NodeId> idle;
    for (const NodeId n : chosen)
      if (!busy[n]) idle.push_back(n);
    if (idle.empty()) return;
    std::sort(idle.begin(), idle.end(), [&](NodeId a, NodeId b) {
      return spm_estimate(a) < spm_estimate(b);
    });
    // Collect decisions first: dispatch_chunk inserts into in_flight and
    // would invalidate the iteration otherwise.
    struct Reissue {
      NodeId from;
      std::vector<workloads::TaskSpec> pending;
    };
    std::vector<Reissue> planned;
    for (const auto& [token, a] : in_flight) {
      (void)token;
      if (planned.size() >= idle.size()) break;
      if (a.is_reissue) continue;
      const double expected =
          spm_estimate(a.node) * a.work().value + 1.0;  // +1 s transfer slack
      const double age = (backend.now() - a.dispatched).value;
      if (age <= params_.straggler_factor * expected) continue;
      std::vector<workloads::TaskSpec> pending;
      for (const auto& t : a.chunk)
        if (!source.is_completed(t.id)) pending.push_back(t);
      if (!pending.empty()) planned.push_back({a.node, std::move(pending)});
    }
    for (std::size_t i = 0; i < planned.size(); ++i) {
      const NodeId target = idle[i];
      ++report.reissues;
      GRASP_LOG_INFO("farm") << "reissuing " << planned[i].pending.size()
                             << " tasks from " << planned[i].from.value
                             << " to " << target.value;
      dispatch_chunk(target, std::move(planned[i].pending), true);
    }
  };

  auto drain = [&] {
    while (backend.in_flight() > 0) {
      const auto c = backend.wait_next();
      if (!c) break;
      monitor.advance_to(backend.now());
      const auto it = in_flight.find(c->token);
      if (it == in_flight.end()) continue;  // should not happen
      Assignment a = std::move(it->second);
      in_flight.erase(it);
      if (a.phase == Assignment::Phase::Input) {
        a.phase = Assignment::Phase::Compute;
        const OpToken token = tokens.alloc();
        backend.submit_compute(token, a.node, a.work(),
                                make_chunk_body(a.chunk));
        in_flight.emplace(token, std::move(a));
      } else if (a.phase == Assignment::Phase::Compute) {
        a.phase = Assignment::Phase::Output;
        Bytes output = Bytes::zero();
        for (const auto& t : a.chunk) output += t.output;
        const OpToken token = tokens.alloc();
        backend.submit_transfer(token, a.node, root, output);
        in_flight.emplace(token, std::move(a));
      } else {
        // Completed; account below through the shared bookkeeping.
        const double elapsed = (backend.now() - a.dispatched).value;
        const double spm = elapsed / std::max(1e-9, a.work().value);
        node_spm[a.node] = 0.5 * node_spm[a.node] + 0.5 * spm;
        busy[a.node] = false;
        for (const auto& t : a.chunk) {
          if (source.mark_completed(t.id)) {
            ++report.tasks_completed;
            report.trace.record({backend.now(),
                                 gridsim::TraceEventKind::TaskCompleted,
                                 a.node, t.id, elapsed, ""});
          }
        }
        if (!finished && source.all_done()) {
          finished = true;
          finish_time = backend.now();
        }
      }
    }
  };

  auto recalibrate = [&] {
    ++recalibrations;
    report.trace.record({backend.now(),
                         gridsim::TraceEventKind::RecalibrationTriggered,
                         root, TaskId::invalid(),
                         static_cast<double>(recalibrations), ""});
    GRASP_LOG_INFO("farm") << "recalibration #" << recalibrations << " at t="
                           << backend.now().value;
    drain();
    if (source.all_done()) return;
    if (source.empty()) return;  // nothing left to schedule differently
    const std::vector<NodeId> previous = chosen;
    CalibrationResult recal = calibrator.run(backend, pool, source, &monitor,
                                             &report.trace, tokens);
    report.calibration_tasks += recal.tasks_consumed;
    if (!finished && source.all_done()) {
      finished = true;
      finish_time = backend.now();
    }
    for (const auto& s : recal.ranking) node_spm[s.node] = s.adjusted_spm;
    chosen = recal.chosen;
    exec_monitor.arm(recal.baseline_spm, chosen, backend.now());
    report.final_baseline_spm = recal.baseline_spm;
    for (const NodeId n : chosen) {
      if (std::find(previous.begin(), previous.end(), n) == previous.end())
        report.trace.record({backend.now(),
                             gridsim::TraceEventKind::NodeSwapped, n,
                             TaskId::invalid(), 1.0, "joined"});
    }
  };

  report.final_baseline_spm = calibration.baseline_spm;

  // ---- Phase: execution (Algorithm 2 loop) ----------------------------
  while (!source.all_done()) {
    dispatch_to_idle();
    maybe_reissue();
    const auto completion = backend.wait_next();
    if (!completion) {
      if (!source.all_done())
        throw std::logic_error("TaskFarm: deadlock — tasks remain but "
                               "nothing in flight");
      break;
    }
    monitor.advance_to(backend.now());

    const auto it = in_flight.find(completion->token);
    if (it == in_flight.end())
      throw std::logic_error("TaskFarm: unknown completion token");
    Assignment a = std::move(it->second);
    in_flight.erase(it);

    switch (a.phase) {
      case Assignment::Phase::Input: {
        a.phase = Assignment::Phase::Compute;
        const OpToken token = tokens.alloc();
        backend.submit_compute(token, a.node, a.work(),
                                make_chunk_body(a.chunk));
        in_flight.emplace(token, std::move(a));
        break;
      }
      case Assignment::Phase::Compute: {
        a.phase = Assignment::Phase::Output;
        Bytes output = Bytes::zero();
        for (const auto& t : a.chunk) output += t.output;
        const OpToken token = tokens.alloc();
        backend.submit_transfer(token, a.node, root, output);
        in_flight.emplace(token, std::move(a));
        break;
      }
      case Assignment::Phase::Output: {
        const double elapsed = (backend.now() - a.dispatched).value;
        const double spm = elapsed / std::max(1e-9, a.work().value);
        // Blend the observation into the node estimate (EWMA, alpha 0.5).
        node_spm[a.node] = node_spm.count(a.node)
                               ? 0.5 * node_spm[a.node] + 0.5 * spm
                               : spm;
        busy[a.node] = false;
        for (const auto& t : a.chunk) {
          if (source.mark_completed(t.id)) {
            ++report.tasks_completed;
            report.trace.record({backend.now(),
                                 gridsim::TraceEventKind::TaskCompleted,
                                 a.node, t.id, elapsed, ""});
          }
        }
        exec_monitor.observe(a.node, spm, backend.now());
        if (!finished && source.all_done()) {
          finished = true;
          finish_time = backend.now();
        }
        break;
      }
    }

    if (params_.adaptation_enabled && !source.all_done() &&
        recalibrations < params_.max_recalibrations) {
      const MonitorVerdict verdict = exec_monitor.check(backend.now());
      if (verdict != MonitorVerdict::None) recalibrate();
    }
  }

  if (!finished) finish_time = backend.now();
  drain();  // late duplicates / abandoned twins complete off the clock

  report.makespan = finish_time;
  report.recalibrations = recalibrations;
  report.monitor_samples = monitor.samples_taken();
  report.rounds = exec_monitor.rounds_completed();
  report.final_chosen = chosen;
  return report;
}

}  // namespace grasp::core
