#include "core/task_farm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "resil/adaptive_policy.hpp"
#include "resil/chunk_ledger.hpp"
#include "resil/membership.hpp"
#include "support/flat_map.hpp"
#include "support/log.hpp"
#include "svc/grid_service.hpp"

namespace grasp::core {

TaskFarm::TaskFarm(FarmParams params) : params_(std::move(params)),
                                        traits_(task_farm_traits()) {
  if (params_.chunk_size == 0)
    throw std::invalid_argument("TaskFarm: chunk_size must be positive");
  if (params_.straggler_factor <= 1.0)
    throw std::invalid_argument("TaskFarm: straggler_factor must exceed 1");
  if (params_.tail_steal_margin <= 1.0)
    throw std::invalid_argument("TaskFarm: tail_steal_margin must exceed 1");
  if (params_.econ.reissue_waste_budget < 0.0)
    throw std::invalid_argument(
        "TaskFarm: econ.reissue_waste_budget must be non-negative");
  if (params_.econ.holder_quantile <= 0.0 || params_.econ.holder_quantile > 1.0 ||
      params_.econ.relief_quantile <= 0.0 || params_.econ.relief_quantile > 1.0)
    throw std::invalid_argument(
        "TaskFarm: econ quantiles must lie in (0, 1]");
  if (params_.econ.min_samples == 0)
    throw std::invalid_argument("TaskFarm: econ.min_samples must be positive");
  if (params_.econ.evict_break_even <= 0.0)
    throw std::invalid_argument(
        "TaskFarm: econ.evict_break_even must be positive");
  if (params_.econ.exposure_budget_mops < 0.0)
    throw std::invalid_argument(
        "TaskFarm: econ.exposure_budget_mops must be non-negative");
  if (params_.resilience.probe_tasks == 0)
    throw std::invalid_argument("TaskFarm: probe_tasks must be positive");
  if (params_.resilience.checkpoint_period.value < 0.0)
    throw std::invalid_argument(
        "TaskFarm: checkpoint_period must be non-negative");
  if (params_.resilience.checkpoint_period.value > 0.0 &&
      params_.resilience.detector.heartbeat_period.value <= 0.0)
    throw std::invalid_argument(
        "TaskFarm: checkpointing needs a positive heartbeat_period to ride");
  if (params_.resilience.failover.standby_count > 0) {
    if (params_.resilience.detector.heartbeat_period.value <= 0.0)
      throw std::invalid_argument(
          "TaskFarm: farmer failover needs a positive heartbeat_period");
    if (params_.resilience.failover.handshake.value < 0.0)
      throw std::invalid_argument(
          "TaskFarm: failover handshake must be non-negative");
    if (params_.resilience.failover.handshake_per_worker.value < 0.0)
      throw std::invalid_argument(
          "TaskFarm: failover handshake_per_worker must be non-negative");
  }
}

FarmReport TaskFarm::run(Backend& backend, const gridsim::Grid& grid,
                         const std::vector<NodeId>& pool,
                         const workloads::TaskSet& tasks) {
  // Single-tenant service: one job, no arrivals, no shared cache — the
  // service takes its inline fast path and the engine runs on this thread
  // against `backend` directly, exactly as run_engine would.
  svc::GridService::Params service_params;
  service_params.use_calibration_cache = false;
  svc::GridService service(backend, grid, pool, service_params);
  const svc::JobHandle handle = service.submit(svc::FarmJob{params_, tasks});
  service.wait(handle);  // rethrows whatever the engine threw
  return handle.farm_report();
}

FarmReport TaskFarm::run_engine(Backend& backend, const gridsim::Grid& grid,
                                const std::vector<NodeId>& pool,
                                const workloads::TaskSet& tasks) {
  if (pool.empty()) throw std::invalid_argument("TaskFarm: empty pool");

  const gridsim::ChurnTimeline* churn = grid.churn();
  const bool resil_on = params_.resilience.enabled && churn != nullptr;
  // Checkpoints ride the heartbeat-aligned liveness tick (workers piggyback
  // progress on their beats), every `ckpt_every`-th firing.
  const bool ckpt_on =
      resil_on && params_.resilience.checkpoint_period.value > 0.0;
  const std::size_t ckpt_every =
      ckpt_on ? std::max<std::size_t>(
                    1, static_cast<std::size_t>(std::llround(
                           params_.resilience.checkpoint_period.value /
                           params_.resilience.detector.heartbeat_period.value)))
              : 1;

  // The initial worker candidates: pool members present at t=0.  Absent
  // nodes (late joiners) enter through membership events.
  std::vector<NodeId> initial_members =
      churn ? churn->members_at(pool, backend.now()) : pool;
  if (initial_members.empty())
    throw std::invalid_argument("TaskFarm: no pool member is present at t=0");
  const NodeId root =
      params_.root.is_valid() ? params_.root : initial_members.front();

  FarmReport report;
  TaskSource source(tasks);
  TokenAllocator tokens;

  // Telemetry.  Counters are the run's authoritative accounting — the
  // resilience report below is a registry snapshot, never a separate
  // tally — so they record unconditionally; histograms and spans follow
  // the telemetry's detail gate.  Without a caller-supplied sink the farm
  // records into a private detail-disabled instance.
  obs::Telemetry private_telemetry(/*detail=*/false);
  obs::Telemetry& tel =
      params_.telemetry != nullptr ? *params_.telemetry : private_telemetry;
  obs::MetricsRegistry& met = tel.metrics;
  // Spans are stamped from the backend's clock: virtual seconds on the
  // simulator, wall seconds on the threaded backend.
  struct BackendClock final : obs::Clock {
    explicit BackendClock(Backend& b) : backend(b) {}
    [[nodiscard]] double now_s() const override {
      return backend.now().value;
    }
    Backend& backend;
  } obs_clock{backend};
  struct ClockGuard {  // the adapter dies with this frame; detach on exit
    obs::Telemetry& tel;
    ~ClockGuard() { tel.set_clock(nullptr); }
  } clock_guard{tel};
  tel.set_clock(&obs_clock);
  const resil::ResilienceMetrics rm =
      resil::ResilienceMetrics::register_in(met);
  // Baseline snapshot: a Telemetry reused across runs keeps accumulating,
  // and this run's report is the delta against these values.  The typed
  // baseline feeds the component-total imports at the end of the run (they
  // re-add it under set_counter); the generic whole-registry snapshot is
  // what the report delta is actually computed from.
  const resil::ResilienceReport resil_base = rm.snapshot(met);
  const obs::MetricsSnapshot base_snap = met.snapshot();
  const obs::HistogramHandle h_service =
      met.histogram("farm.task_service_seconds", {1e-3, 2.0, 48});
  const obs::HistogramHandle h_detect =
      met.histogram("farm.detection_latency_seconds", {1e-3, 2.0, 48});
  const obs::HistogramHandle h_promote =
      met.histogram("farm.promotion_latency_seconds", {1e-3, 2.0, 48});
  const obs::HistogramHandle h_ckpt_interval =
      met.histogram("farm.checkpoint_interval_seconds", {1e-3, 2.0, 48});
  const obs::HistogramHandle h_wave =
      met.histogram("farm.dispatch_wave_size", {1.0, 2.0, 16});
  // Detection & dispatch-economics instrumentation.  The counters record
  // unconditionally (zero-cost when the policies are off); the effective-
  // timeout histogram shows what leash the accrual detector actually gave
  // each node it declared dead.
  const obs::CounterHandle c_suppressed =
      met.counter("farm.econ.reissues_suppressed");
  const obs::CounterHandle c_econ_evictions =
      met.counter("farm.econ.evictions");
  const obs::CounterHandle c_chunk_caps = met.counter("farm.econ.chunk_caps");
  const obs::HistogramHandle h_eff_timeout =
      met.histogram("resil.detector.effective_timeout_s", {1e-2, 2.0, 16});
  // Online SLO watchdog (observation only, never steers): probed from the
  // liveness ticks and the crash-declaration path below.
  std::optional<obs::Watchdog> watchdog;
  if (params_.slos.any()) watchdog.emplace(params_.slos, tel);
  // Crash flight recorder: load-bearing events only, noted when attached.
  obs::FlightRecorder* const flight = tel.flight;
  const Seconds run_started = backend.now();
  if (flight != nullptr)
    flight->note(run_started.value, "run", "farm_begin", root,
                 static_cast<double>(tasks.size()));

  // Mean task work, used for chunk sizing and straggler expectations.
  const double mean_work =
      tasks.total_work().value / static_cast<double>(tasks.size());

  perfmon::MonitorDaemon::Params mon_params = params_.monitor;
  mon_params.root = root;
  perfmon::MonitorDaemon monitor(grid, initial_members, mon_params);
  monitor.attach_metrics(&met);

  CalibrationParams cal_params = params_.calibration;
  if (!cal_params.root.is_valid()) cal_params.root = root;
  Calibrator calibrator(traits_, cal_params);

  ExecutionMonitor exec_monitor(traits_, params_.threshold);

  // Resilience components.  The tracker/detector pair is the farmer's two
  // sources of membership knowledge: announcements (leave/join events) and
  // silence (heartbeat timeout).  The ledger guarantees exactly-once
  // re-dispatch of work lost to crashes.
  std::optional<resil::MembershipTracker> tracker;
  std::optional<resil::FailureDetector> detector;
  resil::ChunkLedger ledger;
  resil::ElasticPool elastic(params_.resilience.pool);
  if (resil_on) {
    tracker.emplace(*churn, pool);
    detector.emplace(params_.resilience.detector);
    for (const NodeId n : initial_members) detector->watch(n, backend.now());
  }

  // Dispatch economics: per-node service-time quantiles (seeded by
  // calibration, refreshed by every completion) and the pool's observed
  // crash hazard (crashes per live node-second), which drives the chunk
  // exposure cap.  All of it is dead weight unless econ is on.
  const bool econ_on = resil_on && params_.econ.enabled;
  resil::CostModel cost_model;
  std::size_t hazard_crashes = 0;
  double hazard_node_s = 0.0;
  Seconds hazard_last = backend.now();
  auto update_hazard = [&](Seconds now) {
    if (!econ_on || now <= hazard_last) return;
    hazard_node_s += static_cast<double>(detector->watched_count()) *
                     (now - hazard_last).value;
    hazard_last = now;
  };

  // Replicated-farmer failover.  `farmer` is the current coordinator: the
  // endpoint every dispatch ships from and every result returns to.  With
  // the subsystem off it never changes and the farmer is assumed reliable,
  // exactly the pre-failover contract.
  const bool failover_on =
      resil_on && params_.resilience.failover.standby_count > 0;
  NodeId farmer = root;
  std::optional<resil::FailoverCoordinator> failover;
  if (failover_on) {
    resil::FailoverCoordinator::Params fp = params_.resilience.failover;
    fp.detector = params_.resilience.detector;  // ride the same heartbeats
    failover.emplace(fp, root, backend.now());
  }
  // Promotion-in-progress state: the reconnect handshake timer, the chosen
  // successor, and completions that raced the outage (physically: results
  // parked at their workers until the new farmer is reachable).
  OpToken handshake_token = 0;
  // Failover arc span: crash detection → rollback → promotion → handshake
  // (the handshake is a child span).  0 while no outage is in progress.
  obs::SpanId failover_span = 0;
  obs::SpanId handshake_span = 0;
  NodeId pending_farmer = NodeId::invalid();
  bool pending_is_recovery = false;  ///< old farmer rejoined, state intact
  bool promotion_waited = false;  ///< successor not available at detection
  std::vector<Completion> parked;
  bool in_calibration = false;
  // Backend time the open calibration pass began (-1 when none is open);
  // feeds the watchdog's calibration-stall rule.
  double calibration_opened_s = -1.0;
  auto is_handshake = [&](OpToken token) {
    return handshake_token != 0 && token == handshake_token;
  };
  auto farmer_down = [&] { return failover_on && failover->farmer_down(); };
  auto live_member_now = [&](NodeId n) {
    return churn != nullptr && churn->is_member(n, backend.now());
  };
  auto replicate_baseline = [&] {
    if (!failover_on) return;
    failover->log().append(
        {resil::ReplicaRecordKind::Baseline, 0, farmer, 0, 0, 0.0, {}});
    // A calibration ends in a pool-wide collective; its dissemination
    // doubles as a synchronous log flush, so a rollback never spans one
    // (sample results live distributed at the workers that produced them
    // and are re-delivered on the reconnect handshake).
    if (live_member_now(farmer))
      failover->account_flush(failover->log().flush(live_member_now));
  };

  // Chunks currently travelling the input -> compute -> output chain.  At
  // most one per worker (plus reissue twins), so a flat insertion-ordered
  // table: the per-completion find/erase that used to dominate profiles is
  // a short linear scan, and iteration order is deterministic.
  FlatMap<OpToken, Assignment> in_flight;
  // Tokens of chunks surrendered to crash recovery; their completions (the
  // zombies) are swallowed when the backend eventually delivers them.
  std::unordered_set<OpToken> dead_tokens;
  // The subset of dead_tokens abandoned by mid-chunk eviction: the holder
  // is alive, so its eventual completion is discarded but must not count
  // as a zombie (that counter means "completions discarded post-crash").
  std::unordered_set<OpToken> evicted_tokens;
  auto swallow_dead_token = [&](OpToken token) {
    if (dead_tokens.erase(token) == 0) return false;
    if (evicted_tokens.erase(token) == 0)
      met.inc(rm.zombie_completions);
    return true;
  };
  // Deaths declared since the calibrator last polled (it abandons pending
  // samples on these nodes instead of stalling on their outage).
  std::vector<NodeId> newly_dead;
  // Membership consumption, assigned once the recovery lambdas exist below;
  // null during the initial calibration (churn waits out the warmup).
  std::function<void(Seconds)> membership_hook;
  // Routes an engine completion popped inside a recalibration back through
  // the farm's state machine, so resilient recalibrations overlap with
  // ongoing execution instead of draining the pool first.  Assigned below.
  std::function<bool(OpToken)> absorb_engine_completion;
  // Periodic liveness tick (resilient runs): a one-shot backend timer,
  // re-armed on every firing, whose delivery drives the failure detector
  // even when no chunk completions are flowing.  This bounds crash
  // detection at timeout + heartbeat_period unconditionally — a quiescent
  // farm whose only in-flight chunk sits on the corpse no longer waits for
  // the zombie completion to notice.  Handler assigned below.
  OpToken tick_token = 0;
  std::size_t ticks_seen = 0;
  // Time of the last checkpoint pass that accepted progress, for the
  // checkpoint-interval histogram.
  Seconds last_ckpt_at = Seconds::zero();
  bool any_ckpt_yet = false;
  std::function<void()> handle_tick;
  auto is_tick = [&](OpToken token) {
    return tick_token != 0 && token == tick_token;
  };
  ForeignOps foreign;
  foreign.pending = [&] { return dead_tokens.size() + in_flight.size(); };
  foreign.swallow = [&](OpToken token) {
    if (is_tick(token)) {
      // A tick delivered inside a (re)calibration still advances liveness:
      // the calibrator's dead-node poll picks up the verdict next round.
      handle_tick();
      return true;
    }
    if (swallow_dead_token(token)) return true;
    return absorb_engine_completion && absorb_engine_completion(token);
  };
  foreign.dead_nodes = [&](Seconds now) {
    if (membership_hook) membership_hook(now);
    return std::exchange(newly_dead, {});
  };
  foreign.surrender = [&](OpToken token, NodeId node,
                          const workloads::TaskSpec& task, bool is_probe) {
    dead_tokens.insert(token);
    if (is_probe || !task.id.is_valid() || source.is_completed(task.id))
      return;
    source.push_front(task);
    met.inc(rm.tasks_redispatched);
    report.trace.record({backend.now(),
                         gridsim::TraceEventKind::ChunkRedispatched, node,
                         task.id, 0.0, "calibration"});
  };

  // ---- Phase: calibration (Algorithm 1) -------------------------------
  in_calibration = true;
  calibration_opened_s = backend.now().value;
  if (flight != nullptr)
    flight->note(calibration_opened_s, "calibration", "begin", root,
                 static_cast<double>(initial_members.size()));
  const obs::SpanId cal_span = tel.spans.begin("calibration");
  CalibrationResult calibration =
      calibrator.run(backend, initial_members, source, &monitor,
                     &report.trace, tokens, &foreign);
  tel.spans.end(cal_span,
                static_cast<double>(calibration.tasks_consumed), "initial");
  in_calibration = false;
  calibration_opened_s = -1.0;
  if (flight != nullptr)
    flight->note(backend.now().value, "calibration", "end", root,
                 static_cast<double>(calibration.chosen.size()));
  report.calibration_tasks += calibration.tasks_consumed;
  // Only the initial calibration warm-starts from the shared cache: a
  // recalibration is triggered by evidence that conditions moved, so it
  // re-measures every node — while still publishing its fresh samples for
  // the next tenant.
  if (cal_params.spm_cache != nullptr && cal_params.warm_start) {
    cal_params.warm_start = false;
    calibrator = Calibrator(traits_, cal_params);
  }
  exec_monitor.arm(calibration.baseline_spm, calibration.chosen,
                   backend.now());
  elastic.reset(calibration.chosen);
  replicate_baseline();

  // Per-node performance estimate (seconds per Mop), seeded by calibration
  // and refreshed by every completion; drives chunking and stragglers.
  // Dense-slot tables keyed by node id: these are read on every dispatch
  // pass for every worker, where direct indexing beats hashing outright
  // (0 means "no estimate yet" — real estimates are strictly positive).
  NodeMap<double> node_spm;
  for (const auto& s : calibration.ranking) node_spm[s.node] = s.adjusted_spm;
  if (econ_on)
    for (const auto& s : calibration.ranking)
      cost_model.record(s.node, s.adjusted_spm);
  // Per-node current chunk size (adaptive chunking).
  NodeMap<std::size_t> node_chunk;
  for (const NodeId n : pool) node_chunk[n] = params_.chunk_size;

  NodeMap<char> busy;
  for (const NodeId n : pool) busy[n] = false;

  Seconds finish_time = Seconds::zero();
  bool finished = false;
  std::size_t recalibrations = 0;
  bool pending_recalibration = false;

  // Wrap the caller's per-task payload (if any) around a chunk: the
  // threaded backend runs it on the worker thread, the simulator ignores it.
  auto make_chunk_body =
      [&](const std::vector<workloads::TaskSpec>& chunk) -> std::function<void()> {
    if (!params_.calibration.task_body) return {};
    return [fn = params_.calibration.task_body, chunk] {
      for (const auto& t : chunk) fn(t);
    };
  };

  auto spm_estimate = [&](NodeId n) {
    const double estimate = node_spm.at_or_default(n);
    if (estimate > 0.0) return estimate;
    return std::max(1e-9, calibration.baseline_spm);
  };

  // Crash-exposure chunk cap (econ policy): a chunk of W mops on a node
  // running at `spm` seconds/Mop is exposed for spm*W seconds; under an
  // observed hazard of lambda crashes per node-second it is lost with
  // probability ~lambda*spm*W, costing on average half its work in
  // un-checkpointed mops.  Expected waste lambda*spm*W^2/2 stays within
  // exposure_budget_mops when W <= sqrt(2*budget / (lambda*spm)).  With no
  // crash observed yet lambda is unknown (and zero is the best estimate),
  // so no cap applies and churn-free runs are untouched.
  auto econ_chunk_cap = [&](NodeId n) -> std::size_t {
    constexpr auto kNoCap = std::numeric_limits<std::size_t>::max();
    if (!econ_on || params_.econ.exposure_budget_mops <= 0.0) return kNoCap;
    if (hazard_crashes == 0 || hazard_node_s <= 0.0) return kNoCap;
    const double lambda =
        static_cast<double>(hazard_crashes) / hazard_node_s;
    const double spm = cost_model.node_spm_quantile(
        n, 0.5, params_.econ.min_samples, spm_estimate(n));
    if (lambda <= 0.0 || spm <= 0.0 || mean_work <= 0.0) return kNoCap;
    const double w_cap =
        std::sqrt(2.0 * params_.econ.exposure_budget_mops / (lambda * spm));
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(w_cap / mean_work));
  };

  auto chunk_for = [&](NodeId n) -> std::size_t {
    std::size_t want = params_.chunk_size;
    if (params_.adaptive_chunking) {
      const double per_task = spm_estimate(n) * mean_work;
      if (per_task > 0.0) {
        const auto ideal = static_cast<std::size_t>(
            std::llround(params_.target_chunk_seconds / per_task));
        const std::size_t clamped =
            std::clamp<std::size_t>(ideal, 1, params_.max_chunk);
        if (clamped != node_chunk[n]) {
          node_chunk[n] = clamped;
          ++report.chunk_resizes;
          report.trace.record({backend.now(),
                               gridsim::TraceEventKind::ChunkResized, n,
                               TaskId::invalid(), static_cast<double>(clamped),
                               "chunk"});
        }
        want = clamped;
      }
    }
    if (const std::size_t cap = econ_chunk_cap(n); cap < want) {
      want = cap;
      ++report.econ_chunk_caps;
      met.inc(c_chunk_caps);
    }
    return want;
  };

  // Dispatch rounds hand a whole wave of chunk transfers to the backend in
  // one submit_batch call (one bulk event-queue insert on the simulator).
  // queue_chunk stages a chunk; flush_dispatches ships the wave.  Batch
  // order equals call order, so completion ordering is identical to
  // one-at-a-time submission.
  std::vector<OpRequest> dispatch_wave;
  auto queue_chunk = [&](NodeId node, std::vector<workloads::TaskSpec> chunk,
                         bool is_reissue, bool is_probe = false) {
    Assignment a;
    a.chunk = std::move(chunk);
    a.node = node;
    a.dispatched = backend.now();
    a.is_reissue = is_reissue;
    a.is_probe = is_probe;
    a.span = tel.spans.begin("chunk", 0, node,
                             a.chunk.empty() ? TaskId::invalid()
                                             : a.chunk.front().id,
                             a.work().value);
    Bytes input = Bytes::zero();
    for (const auto& t : a.chunk) input += t.input;
    const OpToken token = tokens.alloc();
    dispatch_wave.push_back(OpRequest::transfer(token, farmer, node, input));
    for (const auto& t : a.chunk)
      report.trace.record({backend.now(),
                           is_reissue ? gridsim::TraceEventKind::TaskReissued
                                      : gridsim::TraceEventKind::TaskDispatched,
                           node, t.id, t.work.value, ""});
    busy[node] = true;
    if (resil_on)
      ledger.record(token, {node, a.chunk, a.dispatched, a.work()});
    if (failover_on)
      failover->log().append(
          {resil::ReplicaRecordKind::Assign, token, node, 0, 0, 0.0, {}});
    in_flight.emplace(token, std::move(a));
  };
  auto flush_dispatches = [&] {
    if (dispatch_wave.empty()) return;
    met.observe(h_wave, static_cast<double>(dispatch_wave.size()));
    backend.submit_batch(std::move(dispatch_wave));
    dispatch_wave.clear();
  };

  // Return the unfinished tasks of a lost chunk to the front of the queue
  // (order-preserving), tracing each re-dispatch.
  auto requeue_pending = [&](const std::vector<workloads::TaskSpec>& chunk,
                            NodeId from) {
    for (auto it = chunk.rbegin(); it != chunk.rend(); ++it) {
      if (source.is_completed(it->id)) continue;
      source.push_front(*it);
      met.inc(rm.tasks_redispatched);
      report.trace.record({backend.now(),
                           gridsim::TraceEventKind::ChunkRedispatched, from,
                           it->id, 0.0, ""});
    }
  };

  // Salvage the checkpointed prefix of a surrendered chunk: those tasks'
  // partial results already sit at the farmer, so they are completed here
  // rather than re-dispatched (the suffix-only re-dispatch rule).  Tasks a
  // winning twin finished first stay with the twin — mark_completed dedupes.
  auto recover_checkpointed = [&](const resil::ChunkLedger::Entry& entry) {
    const std::size_t upto = std::min(entry.checkpointed, entry.tasks.size());
    std::vector<workloads::TaskSpec> marked;
    for (std::size_t i = 0; i < upto; ++i) {
      const auto& t = entry.tasks[i];
      if (!t.id.is_valid() || !source.mark_completed(t.id)) continue;
      ++report.tasks_completed;
      if (failover_on) marked.push_back(t);
      report.trace.record({backend.now(), gridsim::TraceEventKind::TaskRecovered,
                           entry.node, t.id, t.work.value, "checkpoint"});
      report.trace.record({backend.now(), gridsim::TraceEventKind::TaskCompleted,
                           entry.node, t.id, 0.0, "recovered"});
    }
    if (!marked.empty()) {
      // Recovered results are freshly authoritative farmer state: the next
      // flush must replicate them like any other accepted completion.
      double result_bytes = 0.0;
      for (const auto& t : marked) result_bytes += t.output.value;
      failover->log().append({resil::ReplicaRecordKind::Complete, 0,
                              entry.node, 0, 0, result_bytes,
                              std::move(marked)});
    }
    if (!finished && source.all_done()) {
      finished = true;
      finish_time = backend.now();
    }
  };

  // Current live view the farmer holds: every node it still watches.
  auto farmer_live_view = [&]() -> std::vector<NodeId> {
    if (!resil_on) return initial_members;
    return detector->watched();
  };

  // Declare `node` dead: stop watching it, shrink the worker set, and
  // surrender its in-flight chunks to the queue — exactly once, via the
  // ledger.  `why` lands in the trace for post-hoc timelines.
  auto declare_dead = [&](NodeId node, const char* why) {
    if (!resil_on || !detector->watching(node)) return;
    // Settle the hazard clock before the watched count shrinks, then count
    // the crash: the rate stays crashes per live node-second.
    update_hazard(backend.now());
    ++hazard_crashes;
    if (met.enabled())
      met.observe(h_eff_timeout, detector->effective_timeout(node).value);
    detector->unwatch(node);
    elastic.remove(node);
    busy[node] = false;
    newly_dead.push_back(node);
    if (failover_on) {
      failover->log().append(
          {resil::ReplicaRecordKind::Membership, 0, node, 0, 0, 0.0, {}});
      if (failover->is_standby(node)) failover->standby_lost(node);
    }
    met.inc(rm.crashes_detected);
    // Detection latency: now minus the actual crash instant (the latest
    // Crash event for this node).  Rare path, so the timeline scan is
    // affordable.  Computed when either consumer wants it: the detail-tier
    // histogram, or a detection-latency SLO (which must fire even with the
    // detail tier off).
    if (met.enabled() ||
        (watchdog && watchdog->rules().detection_latency_s > 0.0)) {
      const auto& events = churn->events();
      for (auto it = events.rbegin(); it != events.rend(); ++it) {
        if (it->at > backend.now()) continue;
        if (it->node != node ||
            it->kind != gridsim::ChurnEventKind::Crash)
          continue;
        const double latency = (backend.now() - it->at).value;
        met.observe(h_detect, latency);
        if (watchdog)
          watchdog->check_detection(node, backend.now().value, latency);
        break;
      }
    }
    if (met.enabled())
      tel.spans.instant("crash_detected", 0, node, TaskId::invalid(), 0.0,
                        why);
    if (flight != nullptr)
      flight->note(backend.now().value, "crash", why, node, 0.0);
    report.trace.record({backend.now(),
                         gridsim::TraceEventKind::NodeCrashDetected, node,
                         TaskId::invalid(), 0.0, why});
    GRASP_LOG_INFO("farm") << "node " << node.value << " declared dead ("
                           << why << ") at t=" << backend.now().value;
    const auto already_done = [&](TaskId id) { return source.is_completed(id); };
    for (auto& [token, entry] : ledger.fail_node(node, already_done)) {
      if (auto [found, lost] = in_flight.take(token); found) {
        dead_tokens.insert(token);
        tel.spans.end(lost.span, 0.0, "lost");
        if (flight != nullptr)
          flight->note(backend.now().value, "chunk", "lost", node,
                       lost.work().value);
      }
      recover_checkpointed(entry);
      requeue_pending(entry.tasks, node);
    }
    // The crash may have taken reissue twins with it: clear the duplicated
    // marks so the surviving originals are eligible for straggler/tail
    // relief again.  Over-clearing is safe — first completion wins.
    for (auto& [token, a] : in_flight) {
      (void)token;
      a.duplicated = false;
    }
    monitor.rewatch(farmer_live_view());
    exec_monitor.arm(exec_monitor.baseline_spm(), elastic.workers(),
                     backend.now());
    // A dead coordinator cannot usefully re-run Algorithm 1 — and letting
    // it try would stall the promotion behind a calibration rooted at a
    // corpse.  The promotion path schedules its own recalibration.
    if (params_.resilience.recalibrate_on_crash &&
        !(failover_on && node == farmer))
      pending_recalibration = true;
  };

  // Consume membership events and heartbeat silence up to `now`.
  auto consume_membership = [&](Seconds now) {
    if (!resil_on) return;
    update_hazard(now);
    detector->advance(now, [&](NodeId n, Seconds t) {
      return churn->is_member(n, t);
    });
    for (const auto& e : tracker->poll(now)) {
      switch (e.kind) {
        case gridsim::ChurnEventKind::Crash:
          // The farmer cannot see a crash directly; the detector (silence)
          // or a zombie completion reveals it.
          break;
        case gridsim::ChurnEventKind::Leave:
          if (detector->watching(e.node)) {
            detector->unwatch(e.node);
            elastic.remove(e.node);
            if (failover_on) {
              failover->log().append({resil::ReplicaRecordKind::Membership, 0,
                                      e.node, 0, 0, 0.0, {}});
              if (failover->is_standby(e.node))
                failover->standby_lost(e.node);
              if (e.node == farmer && failover->farmer_leaving(now)) {
                // A graceful departure ships its unflushed suffix on the
                // way out: the successor starts from complete state and
                // nothing rolls back.
                failover->account_flush(
                    failover->log().flush(live_member_now));
                if (failover_span == 0)
                  failover_span = tel.spans.begin("failover", 0, e.node);
                report.trace.record(
                    {now, gridsim::TraceEventKind::FarmerCrashDetected,
                     e.node, TaskId::invalid(), 0.0, "announced departure"});
              }
            }
            met.inc(rm.leaves);
            // A calibration running right now must abandon this node's
            // samples (it can no longer be chosen); execution-phase chunks
            // still drain gracefully.
            newly_dead.push_back(e.node);
            report.trace.record({now, gridsim::TraceEventKind::NodeLeftPool,
                                 e.node, TaskId::invalid(), 0.0, "announced"});
            monitor.rewatch(farmer_live_view());
            exec_monitor.arm(exec_monitor.baseline_spm(), elastic.workers(),
                             now);
          }
          break;
        case gridsim::ChurnEventKind::Join:
        case gridsim::ChurnEventKind::Rejoin:
          met.inc(rm.joins);
          report.trace.record({now, gridsim::TraceEventKind::NodeJoinedPool,
                               e.node, TaskId::invalid(), 0.0,
                               e.kind == gridsim::ChurnEventKind::Rejoin
                                   ? "rejoin"
                                   : "join"});
          detector->watch(e.node, now);
          if (failover_on)
            failover->log().append({resil::ReplicaRecordKind::Membership, 0,
                                    e.node, 0, 0, 0.0, {}});
          // Clear a stale busy flag only when nothing is actually in flight
          // there: a node rejoining before its stalled chunk surfaced as a
          // zombie is still occupied, and dispatching a second chunk would
          // break the one-chunk-per-worker discipline.
          {
            bool occupied = false;
            for (const auto& [token, a] : in_flight) {
              (void)token;
              if (a.node == e.node) occupied = true;
            }
            if (!occupied) busy[e.node] = false;
          }
          if (params_.resilience.elastic_join) elastic.begin_probation(e.node);
          monitor.rewatch(farmer_live_view());
          break;
      }
    }
    for (const NodeId n : detector->suspects(now))
      declare_dead(n, "heartbeat timeout");
  };

  // Checkpoint pass: absorb the progress reports workers piggybacked on
  // their last heartbeats.  Progress is what the backend surfaces for the
  // chunk's compute op; the shipped high-water mark is the longest task
  // prefix whose work fits in the elapsed fraction.  With eviction enabled
  // the same reports double as execution observations, so a chunk crawling
  // far behind the baseline is abandoned mid-flight: the node is evicted,
  // the checkpointed prefix salvaged, and only the suffix re-dispatched.
  auto take_checkpoints = [&] {
    if (!ckpt_on) return;
    const obs::SpanId pass_span = tel.spans.begin("checkpoint_pass");
    std::vector<OpToken> abandoned;
    // The pass stages every accepted progress report and applies them to
    // the ledger in one checkpoint_batch call at the end.
    std::vector<resil::ChunkLedger::CheckpointUpdate> updates;
    for (auto& [token, a] : in_flight) {
      if (a.phase != Assignment::Phase::Compute) continue;
      // A worker that crashed since this chunk was dispatched ships nothing
      // more for it: the crash destroyed the chunk's in-memory state, so
      // even after a rejoin there is no fresher partial result to report —
      // whatever was checkpointed before the crash stays valid (it already
      // reached the farmer), and the completion, when it surfaces, is a
      // zombie.  Announced leavers keep reporting: they drain gracefully.
      if (churn->crashed_during(a.node, a.dispatched, backend.now()))
        continue;
      const double frac = backend.compute_progress(token);
      if (frac <= 0.0) continue;
      const double budget = frac * a.work().value;
      std::size_t done = 0;
      double acc = 0.0;
      for (const auto& t : a.chunk) {
        acc += t.work.value;
        if (acc > budget && frac < 1.0) break;
        ++done;
      }
      const std::size_t prev = ledger.checkpointed(token);
      if (done > prev && ledger.tracks(token)) {
        // The newly checkpointed tasks' partial results ship to the farmer;
        // their volume is what checkpoint shipping costs.  (The virtual-time
        // farm accounts the bytes; the mp transport charges them through the
        // world's send hook.)
        double state_bytes = 0.0;
        for (std::size_t i = prev; i < done && i < a.chunk.size(); ++i)
          state_bytes += a.chunk[i].output.value;
        updates.push_back({token, done, state_bytes});
        if (failover_on)
          failover->log().append({resil::ReplicaRecordKind::Checkpoint, token,
                                  a.node, prev, done, state_bytes, {}});
        report.trace.record({backend.now(),
                             gridsim::TraceEventKind::ChunkCheckpointed,
                             a.node, TaskId::invalid(),
                             static_cast<double>(done), ""});
      }
      // Mid-chunk degradation check (only meaningful once some progress
      // exists to estimate speed from).  Measured from the compute phase's
      // start so the input transfer does not inflate the estimate early in
      // the chunk.  Reissue twins are exempt: their originals already
      // cover the work, first completion wins.
      if (!a.is_reissue && elastic.contains(a.node)) {
        const double est_spm = (backend.now() - a.compute_started).value /
                               std::max(1e-9, budget);
        if (econ_on) {
          // Checkpoint-vs-redo break-even: staying finishes the remaining
          // mops at the observed pace; evicting pays a fresh dispatch plus
          // redoing the un-checkpointed suffix on a typical pool node
          // (salvaging what this very pass just checkpointed).  Evict only
          // when staying is clearly dearer — and force_evict still honours
          // min_workers.
          //
          // The economics are consulted only for a node running well below
          // its *own* calibrated pace (the straggler_factor degradation
          // gate).  Without that gate the break-even fires on every
          // legitimately slow node of a heterogeneous pool — the pool
          // median is cheaper than them by construction — and evicting
          // healthy stragglers turns their sunk progress into pure waste.
          const bool degraded =
              est_spm >
              params_.straggler_factor * spm_estimate(a.node);
          const double remaining = std::max(0.0, a.work().value - budget);
          if (degraded && remaining > 0.0 && frac < 1.0) {
            double redo_mops = 0.0;
            for (std::size_t i = done; i < a.chunk.size(); ++i)
              if (!source.is_completed(a.chunk[i].id))
                redo_mops += a.chunk[i].work.value;
            const double redo_spm = cost_model.pool_spm_quantile(
                params_.econ.relief_quantile,
                std::max(1e-9, exec_monitor.baseline_spm()));
            const double stay_s = est_spm * remaining;
            const double redo_s = redo_spm * redo_mops + 1.0;  // + dispatch
            if (stay_s > params_.econ.evict_break_even * redo_s &&
                elastic.force_evict(a.node)) {
              abandoned.push_back(token);
              ++report.econ_evictions;
              met.inc(c_econ_evictions);
              report.trace.record({backend.now(),
                                   gridsim::TraceEventKind::EconEvicted,
                                   a.node, TaskId::invalid(), stay_s - redo_s,
                                   "stay cost exceeded redo"});
            }
          }
        } else if (params_.resilience.pool.evict_ratio > 0.0) {
          if (elastic.observe(a.node, est_spm, exec_monitor.baseline_spm()))
            abandoned.push_back(token);
        }
      }
    }
    // Apply the pass's progress reports before processing evictions, so an
    // evicted chunk salvages the prefix this very pass just checkpointed.
    ledger.checkpoint_batch(updates);
    if (!updates.empty()) {
      if (any_ckpt_yet)
        met.observe(h_ckpt_interval, (backend.now() - last_ckpt_at).value);
      any_ckpt_yet = true;
      last_ckpt_at = backend.now();
    }
    const auto already_done =
        [&](TaskId id) { return source.is_completed(id); };
    for (const OpToken token : abandoned) {
      auto [found, a] = in_flight.take(token);
      if (!found) continue;
      // Its straggling completion is discarded — but not as a zombie: the
      // holder is alive.
      dead_tokens.insert(token);
      evicted_tokens.insert(token);
      tel.spans.end(a.span, 0.0, "evicted");
      report.trace.record({backend.now(), gridsim::TraceEventKind::NodeEvicted,
                           a.node, TaskId::invalid(), 0.0,
                           "mid-chunk degradation"});
      GRASP_LOG_INFO("farm") << "node " << a.node.value
                             << " evicted mid-chunk at t="
                             << backend.now().value;
      const auto entry = ledger.invalidate(token, already_done);
      if (entry) recover_checkpointed(*entry);
      requeue_pending(a.chunk, a.node);
      busy[a.node] = false;
      exec_monitor.arm(exec_monitor.baseline_spm(), elastic.workers(),
                       backend.now());
    }
    tel.spans.end(pass_span, static_cast<double>(updates.size()),
                  updates.empty() ? "idle" : "progress");
  };

  // ---- Farmer failover machinery (replicated-farmer runs) --------------
  // Undo one unflushed log record at promotion time: the state it
  // describes died with the old farmer before any standby received it.
  auto undo_record = [&](const resil::ReplicaLog::Record& r) {
    switch (r.kind) {
      case resil::ReplicaRecordKind::Checkpoint:
        // The partial state above prev_mark only ever reached the corpse.
        ledger.revert_checkpoint(r.token, r.prev_mark);
        break;
      case resil::ReplicaRecordKind::Complete:
        // Accepted results that were never replicated: retract the marks
        // and re-queue the tasks (front, reverse order, like any other
        // loss path) so they run again under the new farmer.
        for (auto it = r.tasks.rbegin(); it != r.tasks.rend(); ++it) {
          if (!it->id.is_valid() || !source.unmark_completed(it->id))
            continue;
          --report.tasks_completed;
          met.inc(rm.results_rolled_back);
          source.push_front(*it);
          met.inc(rm.tasks_redispatched);
          report.trace.record({backend.now(),
                               gridsim::TraceEventKind::TaskResultLost,
                               r.node, it->id, it->work.value, ""});
          report.trace.record({backend.now(),
                               gridsim::TraceEventKind::ChunkRedispatched,
                               r.node, it->id, 0.0, "failover"});
        }
        if (finished && !source.all_done()) finished = false;
        break;
      case resil::ReplicaRecordKind::Assign:
      case resil::ReplicaRecordKind::Membership:
      case resil::ReplicaRecordKind::Baseline:
        // Re-learned on the reconnect handshake: live workers re-register
        // their in-flight chunks and the broadcast-heartbeat mirror
        // re-derives membership, so these records need no rollback.
        break;
    }
  };

  // Keep the standby set at strength while the farmer is alive: the
  // lowest-id live members outside the coordinator role receive a state
  // snapshot and start applying the log from its current end.
  auto snapshot_and_recruit = [&] {
    if (!failover_on || failover->farmer_down()) return;
    // Standbys that died during a past outage were kept registered so a
    // rejoin could resume; with the farmer alive again they are dead
    // weight and make room for live recruits.
    failover->prune_dead_standbys(live_member_now);
    while (failover->standby_deficit() > 0) {
      NodeId pick = NodeId::invalid();
      for (const NodeId n : detector->watched()) {
        if (n == farmer || failover->is_standby(n) || !live_member_now(n))
          continue;
        pick = n;
        break;
      }
      if (!pick.is_valid()) return;  // nobody to recruit right now
      const double snapshot_bytes = 256.0 + ledger.snapshot_bytes();
      failover->recruit(pick, snapshot_bytes);
      report.trace.record({backend.now(),
                           gridsim::TraceEventKind::StandbyRecruited, pick,
                           TaskId::invalid(), snapshot_bytes, ""});
      GRASP_LOG_INFO("farm") << "standby " << pick.value
                             << " recruited at t=" << backend.now().value;
    }
  };
  // Per-tick failover pass; assigned below (it cancels the liveness tick
  // on the unrecoverable path, so it must see cancel_tick).
  std::function<void()> failover_step;

  auto arm_tick = [&] {
    if (!resil_on) return;
    tick_token = tokens.alloc();
    // Align ticks to the heartbeat grid: beats are credited at absolute
    // multiples of the period, so suspicion state only changes there — a
    // grid-aligned tick evaluates each beat boundary as soon as it passes,
    // keeping detection within timeout + heartbeat_period of the crash.
    const double period =
        1.0 * params_.resilience.detector.heartbeat_period.value;
    const double into = std::fmod(backend.now().value, period);
    backend.submit_timer(tick_token, Seconds{period - into});
  };
  auto cancel_tick = [&] {
    if (tick_token != 0) {
      backend.cancel_timer(tick_token);
      tick_token = 0;
    }
  };
  failover_step = [&] {
    if (!failover_on) return;
    const Seconds now = backend.now();
    if (!failover->farmer_down()) {
      if (!in_calibration && live_member_now(farmer)) {
        // Healthy farmer: ship the unflushed log suffix to every live
        // standby, piggybacked on this tick's heartbeat round, and keep
        // the standby set at strength.
        failover->account_flush(failover->log().flush(live_member_now));
        snapshot_and_recruit();
      }
      // Standby side: watch the farmer's own beats for silence.
      if (!failover->advance(now, [&](NodeId n, Seconds t) {
            return churn->is_member(n, t);
          }))
        return;
      if (failover_span == 0)
        failover_span = tel.spans.begin("failover", 0, farmer);
      report.trace.record({now, gridsim::TraceEventKind::FarmerCrashDetected,
                           farmer, TaskId::invalid(), 0.0,
                           "heartbeat timeout"});
      GRASP_LOG_INFO("farm") << "farmer " << farmer.value
                             << " declared dead at t=" << now.value;
      if (flight != nullptr)
        flight->note(now.value, "failover", "farmer_down", farmer, 0.0);
      declare_dead(farmer, "farmer silent");  // its worker-side chunks
    }
    // Promotion waits out an in-flight Algorithm 1 pass: the calibration
    // collective must land (or abandon the corpse) before the coordinator
    // role moves.  Detection above is never deferred, so the crash is
    // still declared within timeout + heartbeat_period.
    if (in_calibration) return;
    if (handshake_token != 0) return;  // reconnect handshake under way
    if (const auto s = failover->successor(live_member_now)) {
      // Deterministic promotion: lowest-id live standby wins.  Its
      // watermark divides history — roll back everything it never
      // received before it starts acting on the replicated state.
      promotion_waited = (now - failover->down_since()).value > 1e-9;
      pending_is_recovery = false;
      pending_farmer = *s;
      tel.spans.instant("rollback", failover_span, *s);
      failover->log().rollback_to(failover->log().watermark(*s),
                                  undo_record);
      handshake_span = tel.spans.begin("handshake", failover_span, *s);
      handshake_token = tokens.alloc();
      // The reconnect window scales with the membership the successor must
      // re-establish channels with (flat when handshake_per_worker is 0).
      backend.submit_timer(handshake_token,
                           failover->handshake_cost(detector->watched().size()));
    } else if (live_member_now(farmer)) {
      // No standby reachable but the old farmer rejoined: it resumes with
      // its own intact state (nothing to roll back), paying the same
      // reconnect handshake.
      promotion_waited = true;
      pending_is_recovery = true;
      pending_farmer = farmer;
      handshake_span = tel.spans.begin("handshake", failover_span, farmer);
      handshake_token = tokens.alloc();
      backend.submit_timer(handshake_token,
                           failover->handshake_cost(detector->watched().size()));
    } else if ((now - failover->down_since()) >
               params_.resilience.failover.patience) {
      cancel_tick();
      throw std::runtime_error(
          "TaskFarm: farmer lost with no standby, rejoin or recruit within "
          "failover patience");
    }
  };
  handle_tick = [&] {
    tick_token = 0;
    consume_membership(backend.now());
    // SLO probes ride the liveness tick: same cadence as the failure
    // detector, no timers of their own.  (Ticks only exist on resilient
    // runs, so `detector` is always engaged here.)
    if (watchdog) {
      const double now_s = backend.now().value;
      if (watchdog->rules().heartbeat_staleness_s > 0.0)
        for (const NodeId n : detector->watched())
          watchdog->check_heartbeat(n, now_s,
                                    detector->last_heartbeat(n).value);
      watchdog->check_wasted_rate(now_s, ledger.wasted_mops(),
                                  now_s - run_started.value);
      if (in_calibration)
        watchdog->check_calibration_stall(now_s, calibration_opened_s);
    }
    // Every ckpt_every-th beat carries the piggybacked progress reports —
    // unless the farm is farmerless, in which case nobody collects them.
    if (ckpt_on && ++ticks_seen % ckpt_every == 0 && !farmer_down())
      take_checkpoints();
    failover_step();
    arm_tick();
  };

  auto dispatch_to_idle = [&] {
    // A farmerless farm dispatches nothing: work resumes when the
    // reconnect handshake of the promoted coordinator closes.
    if (failover_on && (failover->farmer_down() || handshake_token != 0))
      return;
    // Copy only on churn runs, where declare_dead (via the liveness check)
    // can mutate the worker set mid-loop; churn-free passes iterate the
    // pool's own vector and never allocate.
    std::vector<NodeId> workers_copy;
    if (resil_on) workers_copy = elastic.workers();
    const std::vector<NodeId>& workers =
        resil_on ? workers_copy : elastic.workers();
    for (const NodeId n : workers) {
      if (source.empty()) break;
      if (busy[n]) continue;
      // Dispatch-time liveness check: opening the connection to a dead
      // node fails fast, so the farmer learns of the crash here even
      // before the heartbeat timeout.
      if (resil_on && !churn->is_member(n, backend.now())) {
        declare_dead(n, "dispatch failed");
        continue;
      }
      const std::size_t want = chunk_for(n);
      std::vector<workloads::TaskSpec> chunk;
      while (chunk.size() < want && !source.empty())
        chunk.push_back(source.pop());
      if (!chunk.empty()) queue_chunk(n, std::move(chunk), false);
    }
    // Fast-path calibration probes for newcomers in probation.
    if (resil_on) {
      const std::vector<NodeId> probationers = elastic.probationers();
      for (const NodeId n : probationers) {
        if (source.empty()) break;
        if (busy[n]) continue;
        if (!churn->is_member(n, backend.now())) {
          declare_dead(n, "dispatch failed");
          continue;
        }
        std::vector<workloads::TaskSpec> chunk;
        while (chunk.size() < params_.resilience.probe_tasks &&
               !source.empty())
          chunk.push_back(source.pop());
        if (!chunk.empty())
          queue_chunk(n, std::move(chunk), false, /*is_probe=*/true);
      }
    }
    // One batched submission for the whole round's transfers.
    flush_dispatches();
  };

  // Straggler scan: when the queue is dry, duplicate late chunks onto idle
  // chosen workers (first completion wins).
  auto maybe_reissue = [&] {
    if (failover_on && (failover->farmer_down() || handshake_token != 0))
      return;
    if (!params_.reissue_stragglers || !source.empty()) return;
    if ((traits_.actions & kActionReissueTask) == 0) return;
    // Idle chosen workers, fastest first.
    std::vector<NodeId> idle;
    for (const NodeId n : elastic.workers())
      if (!busy[n]) idle.push_back(n);
    std::sort(idle.begin(), idle.end(), [&](NodeId a, NodeId b) {
      return spm_estimate(a) < spm_estimate(b);
    });
    // Idle probationers ride along behind the chosen workers: a duplicated
    // straggler chunk doubles as their admission probe (first completion
    // wins either way), so a node that joins after the queue ran dry can
    // still be admitted and absorb the tail.
    std::size_t probation_targets = 0;
    if (resil_on) {
      for (const NodeId n : elastic.probationers()) {
        if (!busy[n] && churn->is_member(n, backend.now())) {
          idle.push_back(n);
          ++probation_targets;
        }
      }
    }
    if (idle.empty()) return;
    // Collect candidates first: queue_chunk inserts into in_flight and
    // would invalidate the iteration otherwise.  Latest expected finish
    // first, so the fastest idle node relieves the worst chunk.
    struct Candidate {
      OpToken token;
      double expected_finish;  ///< dispatched + expected, on its holder
      bool straggler;
    };
    const double now_s = backend.now().value;
    std::vector<Candidate> candidates;
    for (const auto& [token, a] : in_flight) {
      if (a.is_reissue || a.duplicated) continue;
      // Expected service time on the holder: the calibration/EWMA point
      // estimate classically; under the econ policy, the holder's
      // pessimistic service-time quantile (per-node distribution with
      // pool-wide fallback), so a node with a fat tail is flagged sooner
      // than a uniformly slow one.
      const double spm =
          econ_on ? cost_model.node_spm_quantile(
                        a.node, params_.econ.holder_quantile,
                        params_.econ.min_samples, spm_estimate(a.node))
                  : spm_estimate(a.node);
      const double expected = spm * a.work().value + 1.0;  // +1 s transfer
      const double age = now_s - a.dispatched.value;
      candidates.push_back({token, a.dispatched.value + expected,
                            age > params_.straggler_factor * expected});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) {
                if (x.expected_finish != y.expected_finish)
                  return x.expected_finish > y.expected_finish;
                return x.token < y.token;
              });
    // Pair chunks with idle nodes.  Two triggers, both first-completion-wins:
    //  * straggler — the chunk is far past its expected time (the node
    //    seized up or died silently);
    //  * tail steal — the queue is dry and the chunk's expected finish is
    //    still far enough out that the idle node can redo it from scratch
    //    with half its cost again to spare.  Without it the last chunks
    //    grind on slow nodes while better ones sit idle.
    std::size_t next_idle = 0;
    for (const Candidate& c : candidates) {
      if (next_idle >= idle.size()) break;
      const NodeId target = idle[next_idle];
      Assignment& a = *in_flight.find(c.token);
      if (!econ_on) {
        const double idle_cost = spm_estimate(target) * a.work().value + 1.0;
        const bool tail_steal =
            c.expected_finish > now_s + params_.tail_steal_margin * idle_cost;
        if (!c.straggler && !tail_steal) continue;
      }
      // Only the un-checkpointed, un-completed suffix needs a twin: the
      // checkpointed prefix is salvageable from the farmer's copy even if
      // the holder dies, so duplicating it would buy nothing.
      std::size_t skip = 0;
      if (ckpt_on && ledger.tracks(c.token))
        skip = ledger.checkpointed(c.token);
      std::vector<workloads::TaskSpec> pending;
      for (std::size_t i = skip; i < a.chunk.size(); ++i)
        if (!source.is_completed(a.chunk[i].id)) pending.push_back(a.chunk[i]);
      if (pending.empty()) continue;
      if (econ_on) {
        // Economic gate: E[saved virtual seconds] must beat the waste
        // budget charged per duplicated Mop.  The holder's conditional
        // remaining time is its tail-quantile ETA minus the chunk's age —
        // a chunk past even its 99th-percentile finish is presumed seized
        // or silently dead (unbounded remaining, reissue always pays).
        // The relief cost is the idle node's realistic (median by default)
        // redo of the pending suffix.
        double pending_mops = 0.0;
        for (const auto& t : pending) pending_mops += t.work.value;
        const double age = now_s - a.dispatched.value;
        const double tail_s =
            cost_model.node_spm_quantile(a.node, 0.99,
                                         params_.econ.min_samples,
                                         spm_estimate(a.node)) *
                a.work().value +
            1.0;
        const double relief_s =
            cost_model.node_spm_quantile(target, params_.econ.relief_quantile,
                                         params_.econ.min_samples,
                                         spm_estimate(target)) *
                pending_mops +
            1.0;
        const double saved =
            tail_s > age ? (tail_s - age) - relief_s : 1e18;
        if (saved <= 0.0) continue;  // no benefit even before the budget
        if (saved <= params_.econ.reissue_waste_budget * pending_mops) {
          // Speculatively attractive but not worth the duplicated compute.
          // Reported once per chunk: the scan re-evaluates each round.
          if (!a.suppress_noted) {
            a.suppress_noted = true;
            ++report.reissues_suppressed;
            met.inc(c_suppressed);
            report.trace.record({backend.now(),
                                 gridsim::TraceEventKind::ReissueSuppressed,
                                 a.node, pending.front().id, saved,
                                 "below waste budget"});
          }
          continue;  // idle slot stays free for a worse candidate
        }
      }
      a.duplicated = true;
      const bool as_probe = next_idle >= idle.size() - probation_targets;
      ++next_idle;
      ++report.reissues;
      GRASP_LOG_INFO("farm") << "reissuing " << pending.size()
                             << " tasks from " << a.node.value << " to "
                             << target.value
                             << (as_probe ? " (probation probe)" : "");
      queue_chunk(target, std::move(pending), true, as_probe);
    }
    // One batched submission for the round's reissue twins, like
    // dispatch_to_idle's waves.
    flush_dispatches();
  };

  // Shared completion handling for the main loop and the drains.  Drives
  // the input -> compute -> output state machine and, on churn grids, the
  // zombie test: a completion whose dispatch-to-finish window straddles a
  // crash of its node never really happened.
  auto process_completion = [&](const Completion& c) {
    if (swallow_dead_token(c.token)) return;
    auto [found, a] = in_flight.take(c.token);
    if (!found)
      throw std::logic_error("TaskFarm: unknown completion token");

    if (churn != nullptr &&
        churn->crashed_during(a.node, a.dispatched, backend.now())) {
      // Zombie chunk observed before the detector fired: the work is lost;
      // re-queue it here, exactly once (the ledger entry dies with it).
      met.inc(rm.zombie_completions);
      tel.spans.end(a.span, 0.0, "zombie");
      if (flight != nullptr)
        flight->note(backend.now().value, "chunk", "zombie", a.node,
                     a.work().value);
      if (resil_on) {
        const auto entry = ledger.invalidate(
            c.token, [&](TaskId id) { return source.is_completed(id); });
        if (entry) recover_checkpointed(*entry);
      } else {
        met.inc(rm.chunks_lost);
        met.add(rm.wasted_mops, a.work().value);
      }
      requeue_pending(a.chunk, a.node);
      if (a.is_reissue) {
        // The lost chunk was itself a twin: let its original be duplicated
        // again rather than grinding out the full duration unrelieved.
        for (auto& [token, other] : in_flight) {
          (void)token;
          other.duplicated = false;
        }
      }
      if (resil_on && !tracker->is_member(a.node))
        declare_dead(a.node, "connection lost");
      else
        busy[a.node] = false;
      return;
    }

    switch (a.phase) {
      case Assignment::Phase::Input: {
        a.phase = Assignment::Phase::Compute;
        a.compute_started = backend.now();
        const OpToken token = tokens.alloc();
        backend.submit_compute(token, a.node, a.work(),
                                make_chunk_body(a.chunk));
        if (resil_on) ledger.rekey(c.token, token);
        if (failover_on) failover->log().retarget(c.token, token);
        in_flight.emplace(token, std::move(a));
        break;
      }
      case Assignment::Phase::Compute: {
        a.phase = Assignment::Phase::Output;
        Bytes output = Bytes::zero();
        for (const auto& t : a.chunk) output += t.output;
        const OpToken token = tokens.alloc();
        backend.submit_transfer(token, a.node, farmer, output);
        if (resil_on) ledger.rekey(c.token, token);
        if (failover_on) failover->log().retarget(c.token, token);
        in_flight.emplace(token, std::move(a));
        break;
      }
      case Assignment::Phase::Output: {
        if (resil_on) ledger.complete(c.token);
        const double elapsed = (backend.now() - a.dispatched).value;
        met.observe(h_service, elapsed);
        tel.spans.end(a.span, elapsed, "complete");
        const double spm = elapsed / std::max(1e-9, a.work().value);
        // Blend the observation into the node estimate (EWMA, alpha 0.5).
        double& estimate = node_spm[a.node];
        estimate = estimate > 0.0 ? 0.5 * estimate + 0.5 * spm : spm;
        if (econ_on) cost_model.record(a.node, spm);
        busy[a.node] = false;
        std::vector<workloads::TaskSpec> marked;
        for (const auto& t : a.chunk) {
          if (source.mark_completed(t.id)) {
            ++report.tasks_completed;
            if (failover_on) marked.push_back(t);
            report.trace.record({backend.now(),
                                 gridsim::TraceEventKind::TaskCompleted,
                                 a.node, t.id, elapsed, ""});
          }
        }
        if (!marked.empty()) {
          // The accepted results become authoritative farmer state the
          // next tick's flush replicates; until then they are exactly what
          // a promotion must roll back.
          double result_bytes = 0.0;
          for (const auto& t : marked) result_bytes += t.output.value;
          failover->log().append({resil::ReplicaRecordKind::Complete,
                                  c.token, a.node, 0, 0, result_bytes,
                                  std::move(marked)});
        }
        if (a.is_probe) {
          // Fast-path calibration verdict for a newcomer.
          const bool admitted = elastic.admit(
              a.node, spm, std::max(1e-9, exec_monitor.baseline_spm()));
          if (admitted) {
            report.trace.record({backend.now(),
                                 gridsim::TraceEventKind::NodeAdmitted,
                                 a.node, TaskId::invalid(), spm, ""});
            exec_monitor.arm(exec_monitor.baseline_spm(), elastic.workers(),
                             backend.now());
            GRASP_LOG_INFO("farm")
                << "node " << a.node.value << " admitted (probe spm=" << spm
                << ")";
          }
        } else {
          exec_monitor.observe(a.node, spm, backend.now());
          if (resil_on &&
              elastic.observe(a.node, spm, exec_monitor.baseline_spm())) {
            report.trace.record({backend.now(),
                                 gridsim::TraceEventKind::NodeEvicted,
                                 a.node, TaskId::invalid(), spm,
                                 "persistent degradation"});
            exec_monitor.arm(exec_monitor.baseline_spm(), elastic.workers(),
                             backend.now());
          }
        }
        if (!finished && source.all_done()) {
          finished = true;
          finish_time = backend.now();
        }
        break;
      }
    }
  };

  // Close a reconnect handshake: either commit the promotion (the new
  // farmer takes the endpoints, parked completions re-deliver, the standby
  // set is replenished) or abandon it because the successor died
  // mid-handshake (the next tick re-runs the successor rule).
  auto finish_handshake = [&] {
    handshake_token = 0;
    const Seconds now = backend.now();
    const NodeId chosen = std::exchange(pending_farmer, NodeId::invalid());
    if (!live_member_now(chosen)) {
      // Crash during promotion.  The registry keeps the corpse — it may
      // rejoin and resume from its watermark.
      tel.spans.end(handshake_span, 0.0, "successor died");
      handshake_span = 0;
      report.trace.record({now, gridsim::TraceEventKind::FarmerCrashDetected,
                           chosen, TaskId::invalid(), 0.0,
                           "died during promotion"});
      GRASP_LOG_INFO("farm") << "successor " << chosen.value
                             << " died during promotion at t=" << now.value;
      return;
    }
    if (pending_is_recovery)
      failover->farmer_recovered(now);
    else
      failover->complete_promotion(chosen, now);
    const double promotion_latency = (now - failover->down_since()).value;
    met.observe(h_promote, promotion_latency);
    tel.spans.end(handshake_span, 0.0, "committed");
    handshake_span = 0;
    tel.spans.end(failover_span, promotion_latency,
                  pending_is_recovery ? "recovered" : "promoted");
    failover_span = 0;
    farmer = chosen;
    report.trace.record({now, gridsim::TraceEventKind::FarmerPromoted, farmer,
                         TaskId::invalid(), promotion_latency,
                         pending_is_recovery  ? "self-recovery"
                         : promotion_waited   ? "waited"
                                              : "prompt"});
    GRASP_LOG_INFO("farm") << "farmer promoted: node " << farmer.value
                           << " at t=" << now.value;
    if (flight != nullptr)
      flight->note(now.value, "failover",
                   pending_is_recovery ? "recovered" : "promoted", farmer,
                   promotion_latency);
    // Re-root the support daemons on the new coordinator.
    monitor.reroot(farmer);
    cal_params.root = farmer;
    calibrator = Calibrator(traits_, cal_params);
    // Workers reconnect and re-deliver the results that raced the outage;
    // the zombie test inside judges each against the full window, so a
    // holder that died while parked is still caught.
    for (const Completion& parked_c : std::exchange(parked, {}))
      process_completion(parked_c);
    snapshot_and_recruit();
    if (params_.resilience.recalibrate_on_crash) pending_recalibration = true;
  };

  // Drain live operations.  Chunks surrendered to crash recovery are
  // deliberately left pending: their zombie completions sit in the backend
  // until (long-)after the node's outage, and waiting for them would stall
  // the whole farm on a corpse.
  auto drain = [&] {
    while (backend.in_flight() > dead_tokens.size()) {
      const auto c = backend.wait_next();
      if (!c) break;
      if (!finished) monitor.advance_to(backend.now());
      if (c->is_timer) {
        if (is_tick(c->token)) handle_tick();
        continue;
      }
      consume_membership(backend.now());
      if (farmer_down())
        parked.push_back(*c);
      else
        process_completion(*c);
    }
  };

  auto recalibrate = [&] {
    ++recalibrations;
    report.trace.record({backend.now(),
                         gridsim::TraceEventKind::RecalibrationTriggered,
                         farmer, TaskId::invalid(),
                         static_cast<double>(recalibrations), ""});
    GRASP_LOG_INFO("farm") << "recalibration #" << recalibrations << " at t="
                           << backend.now().value;
    // Resilient runs calibrate concurrently with execution (in-flight
    // chunks keep flowing through absorb_engine_completion); the classic
    // path drains first, as the original Algorithm 2 loop did.
    if (!resil_on) drain();
    if (source.all_done()) return;
    if (source.empty()) return;  // nothing left to schedule differently
    const std::vector<NodeId> previous = elastic.workers();
    std::vector<NodeId> recal_pool = farmer_live_view();
    if (resil_on) {
      // Drop nodes that are provably gone right now (a calibration probe to
      // a dead node would fail at connection time, not stall forever).
      std::vector<NodeId> alive;
      for (const NodeId n : recal_pool)
        if (churn->is_member(n, backend.now())) alive.push_back(n);
        else declare_dead(n, "dispatch failed");
      recal_pool = std::move(alive);
    }
    if (recal_pool.empty()) return;
    // Entries queued while no calibration was listening are stale: every
    // node they name is already outside recal_pool (or back in it after a
    // rejoin, in which case its fresh samples must not be abandoned).
    newly_dead.clear();
    in_calibration = true;
    calibration_opened_s = backend.now().value;
    if (flight != nullptr)
      flight->note(calibration_opened_s, "calibration", "begin", farmer,
                   static_cast<double>(recal_pool.size()));
    const obs::SpanId recal_span = tel.spans.begin("calibration");
    CalibrationResult recal =
        calibrator.run(backend, recal_pool, source, &monitor, &report.trace,
                       tokens, &foreign);
    tel.spans.end(recal_span, static_cast<double>(recal.tasks_consumed),
                  "recalibration");
    in_calibration = false;
    calibration_opened_s = -1.0;
    if (flight != nullptr)
      flight->note(backend.now().value, "calibration", "end", farmer,
                   static_cast<double>(recal.chosen.size()));
    report.calibration_tasks += recal.tasks_consumed;
    if (!finished && source.all_done()) {
      finished = true;
      finish_time = backend.now();
    }
    if (recal.chosen.empty()) return;  // every probed node died; keep the set
    for (const auto& s : recal.ranking) node_spm[s.node] = s.adjusted_spm;
    if (econ_on)
      for (const auto& s : recal.ranking)
        cost_model.record(s.node, s.adjusted_spm);
    elastic.reset(recal.chosen);
    exec_monitor.arm(recal.baseline_spm, recal.chosen, backend.now());
    replicate_baseline();
    report.final_baseline_spm = recal.baseline_spm;
    for (const NodeId n : recal.chosen) {
      if (std::find(previous.begin(), previous.end(), n) == previous.end())
        report.trace.record({backend.now(),
                             gridsim::TraceEventKind::NodeSwapped, n,
                             TaskId::invalid(), 1.0, "joined"});
    }
  };

  report.final_baseline_spm = calibration.baseline_spm;
  membership_hook = consume_membership;
  absorb_engine_completion = [&](OpToken token) {
    if (in_flight.find(token) == nullptr) return false;
    Completion c;
    c.token = token;
    if (farmer_down())
      parked.push_back(c);
    else
      process_completion(c);
    return true;
  };
  consume_membership(backend.now());
  snapshot_and_recruit();  // initial standbys shadow from t=0 of execution
  arm_tick();

  // ---- Phase: execution (Algorithm 2 loop) ----------------------------
  while (!source.all_done()) {
    dispatch_to_idle();
    maybe_reissue();
    const auto completion = backend.wait_next();
    if (!completion) {
      if (!source.all_done())
        throw std::logic_error("TaskFarm: deadlock — tasks remain but "
                               "nothing in flight (all workers lost?)");
      break;
    }
    monitor.advance_to(backend.now());
    if (completion->is_timer) {
      if (is_tick(completion->token)) handle_tick();
      else if (is_handshake(completion->token)) finish_handshake();
      // A tick with no real work in flight and nobody left to dispatch to
      // is the dead end the nullopt branch reports on tick-free runs;
      // without this check the farm would re-arm and spin forever.  A
      // farmerless farm is exempt: promotion (or the failover patience
      // bound) decides its fate.
      if (!source.all_done() && backend.in_flight() == 0 &&
          elastic.workers().empty() && elastic.probationers().empty() &&
          !farmer_down()) {
        cancel_tick();
        throw std::logic_error("TaskFarm: deadlock — tasks remain but "
                               "nothing in flight (all workers lost?)");
      }
    } else {
      consume_membership(backend.now());
      if (farmer_down()) {
        // The completion's destination is a corpse: the worker parks its
        // result and re-delivers it after the reconnect handshake.
        parked.push_back(*completion);
      } else {
        process_completion(*completion);
        // The adaptation threshold is judged on work observations only;
        // ticks exist for liveness and must not perturb Algorithm 2's
        // cadence.
        if (params_.adaptation_enabled && !source.all_done() &&
            recalibrations < params_.max_recalibrations) {
          const MonitorVerdict verdict = exec_monitor.check(backend.now());
          if (verdict != MonitorVerdict::None) pending_recalibration = true;
        }
      }
    }
    // A recalibration is a collective rooted at the farmer: opening it
    // against a dead coordinator fails at connection time, so the verdict
    // stays pending until the promoted farmer can host the pass.
    if (pending_recalibration &&
        !(failover_on &&
          (failover->farmer_down() || !live_member_now(farmer)))) {
      pending_recalibration = false;
      if (params_.adaptation_enabled && !source.all_done() &&
          recalibrations < params_.max_recalibrations)
        recalibrate();
    }
  }

  cancel_tick();  // liveness no longer matters once every task is done
  if (handshake_token != 0) {  // a promotion the finished run no longer needs
    backend.cancel_timer(handshake_token);
    handshake_token = 0;
  }
  if (!finished) finish_time = backend.now();
  report.monitor_samples = monitor.samples_taken();
  drain();  // late duplicates / abandoned twins / zombies, off the clock

  report.makespan = finish_time;
  report.recalibrations = recalibrations;
  report.rounds = exec_monitor.rounds_completed();
  report.final_chosen = elastic.workers();
  // Import the component-owned totals into the registry (on top of any
  // pre-run baseline), then read the whole resilience report back out as
  // a snapshot delta: registry and report cannot disagree.
  if (resil_on) {
    met.set_counter(rm.admissions,
                    resil_base.admissions + elastic.admissions());
    met.set_counter(rm.rejections,
                    resil_base.rejections + elastic.rejections());
    met.set_counter(rm.evictions,
                    resil_base.evictions + elastic.evictions());
    met.set_counter(rm.chunks_lost,
                    resil_base.chunks_lost + ledger.chunks_lost());
    met.set(rm.wasted_mops, resil_base.wasted_mops + ledger.wasted_mops());
    met.set_counter(rm.checkpoints,
                    resil_base.checkpoints + ledger.checkpoints());
    met.set_counter(rm.tasks_recovered,
                    resil_base.tasks_recovered + ledger.tasks_recovered());
    met.set(rm.recovered_mops,
            resil_base.recovered_mops + ledger.recovered_mops());
    met.set(rm.checkpoint_state_bytes,
            resil_base.checkpoint_state_bytes +
                ledger.checkpoint_state_bytes());
  }
  if (failover_on) {
    met.set_counter(rm.failovers,
                    resil_base.failovers + failover->failovers());
    met.set(rm.failover_latency_s,
            resil_base.failover_latency_s + failover->failover_latency_s());
    met.set_counter(rm.standby_recruits,
                    resil_base.standby_recruits + failover->recruits());
    met.set_counter(
        rm.replication_records,
        resil_base.replication_records + failover->replication_records());
    met.set(rm.replication_bytes,
            resil_base.replication_bytes + failover->replication_bytes());
    met.set(rm.handshake_cost_s,
            resil_base.handshake_cost_s + failover->handshake_cost_s());
  }
  // One generic subtraction replaces the old per-field resil copy: the
  // report is the registry delta against the run-start snapshot, decoded
  // by metric name.  resil::subtract(rm.snapshot(met), resil_base) is the
  // equivalent typed spelling (pinned by a test).
  report.resilience = resil::from_snapshot(met.snapshot().diff(base_snap));
  // Mirror the farm-level scalars so the registry carries the full run
  // summary too (absolute values of the latest run; RunSummary reads the
  // resilience block, dashboards read these).
  met.set_counter(met.counter("farm.tasks_completed"),
                  report.tasks_completed);
  met.set_counter(met.counter("farm.calibration_tasks"),
                  report.calibration_tasks);
  met.set_counter(met.counter("farm.recalibrations"), report.recalibrations);
  met.set_counter(met.counter("farm.reissues"), report.reissues);
  met.set_counter(c_suppressed, report.reissues_suppressed);
  met.set_counter(c_econ_evictions, report.econ_evictions);
  met.set_counter(c_chunk_caps, report.econ_chunk_caps);
  met.set_counter(met.counter("farm.chunk_resizes"), report.chunk_resizes);
  met.set_counter(met.counter("farm.monitor_samples"),
                  report.monitor_samples);
  met.set_counter(met.counter("farm.rounds"), report.rounds);
  met.set(met.gauge("farm.makespan_s"), report.makespan.value);
  // Post-run causal diagnosis: blame the makespan on its causes and
  // publish the top-level fractions as obs.blame.* gauges next to the
  // farm scalars.  Needs spans, so it follows the detail tier.
  if (met.enabled() && !tel.spans.records().empty())
    obs::publish_blame(
        obs::analyze_blame(tel.spans.records(), finish_time.value), met);
  if (flight != nullptr)
    flight->note(finish_time.value, "run", "farm_end", farmer,
                 static_cast<double>(report.tasks_completed));
  return report;
}

}  // namespace grasp::core
