// Algorithm 2: threshold-triggered execution monitoring.
//
// "While not recalibration: execute F over the chosen nodes; collect the
//  execution times into T; if min T > Z set recalibration."
//
// Observations are normalised seconds-per-Mop.  A *round* completes when
// every chosen node has reported at least once since the round began; the
// poster's trigger fires when even the fastest node of the round breaches
// the threshold Z (if the *best* node is slow, the environment — not task
// irregularity — has shifted).  Variants keep the same round structure but
// compare the round mean, for the ablation study.  A staleness trigger
// covers the case Algorithm 2 cannot see: a chosen node that stops
// reporting entirely.
#pragma once

#include <string>
#include <vector>

#include "core/skeleton_traits.hpp"
#include "support/flat_map.hpp"
#include "support/ids.hpp"

namespace grasp::core {

struct ThresholdPolicy {
  enum class Kind {
    AbsoluteMin,   ///< trigger when round-min spm > z (z in seconds/Mop)
    RelativeMin,   ///< trigger when round-min spm > z * calibration baseline
    RelativeMean,  ///< trigger when round-mean spm > z * baseline (ablation)
    RelativeMax,   ///< trigger when round-max spm > z * baseline — the
                   ///< bottleneck statistic the pipeline's traits demand
  };
  Kind kind = Kind::RelativeMin;
  double z = 2.0;
  /// A round older than this many seconds with missing reporters is stale.
  /// 0 disables staleness detection.
  double stale_after = 0.0;
};

[[nodiscard]] const char* to_string(ThresholdPolicy::Kind kind);

enum class MonitorVerdict { None, ThresholdExceeded, RoundStale };

[[nodiscard]] const char* to_string(MonitorVerdict verdict);

class ExecutionMonitor {
 public:
  ExecutionMonitor(SkeletonTraits traits, ThresholdPolicy policy);

  /// Install the calibration baseline (mean chosen seconds-per-Mop) and the
  /// chosen set; starts a fresh round.
  void arm(double baseline_spm, const std::vector<NodeId>& chosen,
           Seconds now);

  /// Record one completed work unit on `node`.
  void observe(NodeId node, double seconds_per_mop, Seconds at);

  /// Evaluate Algorithm 2's condition.  Returns a verdict once per
  /// completed (or stale) round, then begins the next round.
  [[nodiscard]] MonitorVerdict check(Seconds now);

  [[nodiscard]] double baseline_spm() const { return baseline_spm_; }
  [[nodiscard]] double threshold_spm() const;
  [[nodiscard]] std::size_t rounds_completed() const { return rounds_; }
  [[nodiscard]] std::size_t triggers() const { return triggers_; }

  /// Latest observed seconds-per-Mop for `node`; NaN before any report.
  [[nodiscard]] double latest(NodeId node) const {
    return latest_.at_or_default(node);
  }

 private:
  void begin_round(Seconds now);

  SkeletonTraits traits_;
  ThresholdPolicy policy_;
  double baseline_spm_ = 0.0;
  std::vector<NodeId> chosen_;
  // Dense per-node slots (NaN marks "no observation"): check() runs on
  // every completion and scans the chosen set, so these reads must be
  // direct loads, not hash probes.
  NodeMap<double> round_times_;  ///< this round
  NodeMap<double> latest_;       ///< across rounds
  std::size_t round_reported_ = 0;  ///< nodes heard from this round
  Seconds round_started_{0.0};
  std::size_t rounds_ = 0;
  std::size_t triggers_ = 0;
};

}  // namespace grasp::core
