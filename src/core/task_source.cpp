#include "core/task_source.hpp"

#include <stdexcept>

namespace grasp::core {

TaskSource::TaskSource(const workloads::TaskSet& set)
    : queue_(set.tasks.begin(), set.tasks.end()), total_(set.tasks.size()) {
  if (queue_.empty())
    throw std::invalid_argument("TaskSource: empty task set");
}

workloads::TaskSpec TaskSource::pop() {
  if (queue_.empty()) throw std::logic_error("TaskSource::pop on empty queue");
  const workloads::TaskSpec t = queue_.front();
  queue_.pop_front();
  return t;
}

void TaskSource::push_front(const workloads::TaskSpec& task) {
  queue_.push_front(task);
}

bool TaskSource::mark_completed(TaskId id) {
  if (id.value < kDenseLimit) {
    const std::size_t index = static_cast<std::size_t>(id.value);
    if (index >= dense_.size()) dense_.resize(index + 1, 0);
    if (dense_[index] != 0) return false;
    dense_[index] = 1;
    ++completed_count_;
    return true;
  }
  if (!sparse_.insert(id).second) return false;
  ++completed_count_;
  return true;
}

bool TaskSource::unmark_completed(TaskId id) {
  if (id.value < kDenseLimit) {
    const std::size_t index = static_cast<std::size_t>(id.value);
    if (index >= dense_.size() || dense_[index] == 0) return false;
    dense_[index] = 0;
    --completed_count_;
    return true;
  }
  if (sparse_.erase(id) == 0) return false;
  --completed_count_;
  return true;
}

}  // namespace grasp::core
