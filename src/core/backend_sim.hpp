// Virtual-time backend over the gridsim models.
//
// Costs are charged analytically: a compute op finishes after
// NodeModel::compute_time (which integrates dynamic background load), a
// transfer after LinkModel::transfer_duration.  Operations on one node/link
// do not contend with each other — the engines serialise per node by
// construction (demand-driven farm, FIFO stages), which is noted in
// DESIGN.md as the simulator's one simplification.
//
// Bookkeeping is allocation-free on the steady state: delivered completions
// drain through a reusable ring over a flat vector (storage is recycled,
// never reallocated once warm), and the in-flight compute/timer tables are
// small flat vectors scanned linearly — both stay at pool size, where a
// scan beats a hash table.
#pragma once

#include <vector>

#include "core/backend.hpp"
#include "gridsim/event_queue.hpp"
#include "gridsim/grid.hpp"
#include "support/flat_map.hpp"

namespace grasp::core {

class SimBackend final : public Backend {
 public:
  explicit SimBackend(const gridsim::Grid& grid);

  [[nodiscard]] Seconds now() const override;
  void submit_compute(OpToken token, NodeId node, Mops work,
                      std::function<void()> body = {}) override;
  void submit_transfer(OpToken token, NodeId from, NodeId to,
                       Bytes payload) override;
  void submit_timer(OpToken token, Seconds delay) override;
  bool cancel_timer(OpToken token) override;
  void submit_batch(std::vector<OpRequest> requests) override;
  [[nodiscard]] double compute_progress(OpToken token) const override;
  [[nodiscard]] std::optional<Completion> wait_next() override;
  [[nodiscard]] std::size_t in_flight() const override;

  [[nodiscard]] const gridsim::Grid& grid() const { return *grid_; }

 private:
  struct ComputeWindow {
    NodeId node;
    Mops work;
    Seconds start;
  };

  void push_ready(const Completion& c);

  const gridsim::Grid* grid_;
  gridsim::EventQueue events_;
  // Delivered-but-unconsumed completions: a FIFO over a flat vector whose
  // storage is reused across drain cycles (head catches up, both reset).
  std::vector<Completion> ready_;
  std::size_t ready_head_ = 0;
  std::size_t in_flight_ = 0;
  // Armed timers: token -> scheduled event, so cancel_timer can remove the
  // event itself (a cancelled event neither runs nor advances the clock).
  FlatMap<OpToken, gridsim::EventQueue::EventId> timers_;
  // Undelivered compute ops, so compute_progress can report the fraction of
  // work the node's model has actually processed mid-op (stall-aware: spans
  // inside downtime windows contribute nothing).
  FlatMap<OpToken, ComputeWindow> computes_;
};

}  // namespace grasp::core
