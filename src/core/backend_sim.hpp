// Virtual-time backend over the gridsim models.
//
// Costs are charged analytically: a compute op finishes after
// NodeModel::compute_time (which integrates dynamic background load), a
// transfer after LinkModel::transfer_duration.  Operations on one node/link
// do not contend with each other — the engines serialise per node by
// construction (demand-driven farm, FIFO stages), which is noted in
// DESIGN.md as the simulator's one simplification.
#pragma once

#include <deque>
#include <unordered_map>

#include "core/backend.hpp"
#include "gridsim/event_queue.hpp"
#include "gridsim/grid.hpp"

namespace grasp::core {

class SimBackend final : public Backend {
 public:
  explicit SimBackend(const gridsim::Grid& grid);

  [[nodiscard]] Seconds now() const override;
  void submit_compute(OpToken token, NodeId node, Mops work,
                      std::function<void()> body = {}) override;
  void submit_transfer(OpToken token, NodeId from, NodeId to,
                       Bytes payload) override;
  void submit_timer(OpToken token, Seconds delay) override;
  bool cancel_timer(OpToken token) override;
  [[nodiscard]] double compute_progress(OpToken token) const override;
  [[nodiscard]] std::optional<Completion> wait_next() override;
  [[nodiscard]] std::size_t in_flight() const override;

  [[nodiscard]] const gridsim::Grid& grid() const { return *grid_; }

 private:
  struct ComputeWindow {
    NodeId node;
    Mops work;
    Seconds start;
  };

  const gridsim::Grid* grid_;
  gridsim::EventQueue events_;
  std::deque<Completion> ready_;
  std::size_t in_flight_ = 0;
  // Armed timers: token -> scheduled event, so cancel_timer can remove the
  // event itself (a cancelled event neither runs nor advances the clock).
  std::unordered_map<OpToken, gridsim::EventQueue::EventId> timers_;
  // Undelivered compute ops, so compute_progress can report the fraction of
  // work the node's model has actually processed mid-op (stall-aware: spans
  // inside downtime windows contribute nothing).
  std::unordered_map<OpToken, ComputeWindow> computes_;
};

}  // namespace grasp::core
