// Algorithm 1: autonomic calibration.
//
// "Execute F over P nodes concurrently; collect execution times into T;
//  optionally adjust T statistically from processor and bandwidth values;
//  rank P by extrapolating performance; select the fittest."
//
// Every allocated node concurrently executes a sample of real tasks (the
// paper requires that calibration work contributes to the job).  Observed
// cost is normalised to seconds-per-Mop so irregular task sizes stay
// comparable.  Ranking strategies:
//   * TimeOnly      — raw observed seconds-per-Mop, fastest first.
//   * Univariate    — regress time on observed CPU load across the pool and
//                     extrapolate each node to its *forecast* load: a fast
//                     node that was transiently busy during the sample is
//                     credited, one about to become busy is debited.
//   * Multivariate  — same with (CPU load, 1/bandwidth) as predictors, so
//                     communication-starved placements are discounted too.
#pragma once

#include <optional>
#include <vector>

#include "core/backend.hpp"
#include "core/skeleton_traits.hpp"
#include "core/task_source.hpp"
#include "gridsim/trace.hpp"
#include "perfmon/monitor.hpp"

namespace grasp::core {

enum class RankingStrategy { TimeOnly, Univariate, Multivariate };

[[nodiscard]] const char* to_string(RankingStrategy s);
[[nodiscard]] RankingStrategy ranking_strategy_from_string(
    const std::string& name);

/// Pool-wide seconds-per-Mop cache shared across calibrations (and, via the
/// service layer, across tenants): one job's measurements warm another's
/// start.  `lookup` returns a usable estimate for `node` or nullopt (never
/// measured, or too stale by the implementation's policy); `store` records a
/// freshly observed value.  Implementations decide staleness and eviction —
/// the calibrator only reads fresh hits and writes fresh samples.
class SpmCache {
 public:
  virtual ~SpmCache() = default;
  [[nodiscard]] virtual std::optional<double> lookup(NodeId node,
                                                     Seconds now) const = 0;
  virtual void store(NodeId node, double spm, Seconds now) = 0;
};

struct CalibrationParams {
  RankingStrategy strategy = RankingStrategy::TimeOnly;
  /// Explicit size of the chosen set; 0 means use select_fraction.
  std::size_t select_count = 0;
  /// Fraction of the pool to keep when select_count == 0.
  double select_fraction = 0.75;
  /// When > 0, additionally drop any selected node whose adjusted
  /// seconds-per-Mop exceeds this multiple of the pool median — "fittest
  /// selection" that removes only genuinely harmful (swamped/dying)
  /// members instead of a fixed share of capacity.  At least two nodes
  /// (or one for singleton pools) are always kept.
  double exclusion_ratio = 0.0;
  /// Sample tasks per node (overrides SkeletonTraits::calibration_samples
  /// when non-zero).
  std::size_t samples_per_node = 0;
  /// Farmer/root location: sample inputs ship from here, results return
  /// here.  Invalid id means pool.front().
  NodeId root;
  /// Real per-task payload, forwarded to Backend::submit_compute.  The
  /// simulator ignores it (model-driven costs); the threaded backend runs
  /// it on the worker thread.  Null is fine.
  std::function<void(const workloads::TaskSpec&)> task_body;
  /// Shared calibration cache (non-owning; null = no cache).  Nodes with a
  /// fresh cached estimate skip their probe samples entirely (their cached
  /// seconds-per-Mop enters the ranking as if just measured) and freshly
  /// sampled nodes are stored back, so repeated calibrations over one pool
  /// converge to sampling only newcomers.
  SpmCache* spm_cache = nullptr;
  /// Gate for the cache's read side.  Engines disable it on recalibration
  /// (a threshold breach means cached conditions no longer hold) while
  /// still storing the fresh measurements for the next tenant.
  bool warm_start = true;
};

/// Per-node calibration outcome.
struct NodeScore {
  NodeId node;
  double observed_spm = 0.0;   ///< observed seconds per Mop (lower = fitter)
  double adjusted_spm = 0.0;   ///< after statistical extrapolation
  double observed_load = 0.0;  ///< monitor reading at calibration
  double observed_bandwidth = 0.0;
};

struct CalibrationResult {
  std::vector<NodeId> chosen;      ///< fittest subset, fitness order
  std::vector<NodeScore> ranking;  ///< whole pool, fitness order
  Seconds started;
  Seconds finished;
  std::size_t tasks_consumed = 0;  ///< real tasks finished during calibration
  /// Nodes whose probe was skipped because the shared SpmCache held a fresh
  /// estimate (zero without a cache).
  std::size_t nodes_warm_started = 0;
  /// Mean adjusted seconds-per-Mop over the chosen set: the baseline the
  /// execution monitor compares against.
  double baseline_spm = 0.0;

  [[nodiscard]] bool contains(NodeId node) const;
};

/// Monotonic operation-token allocator shared between calibration and the
/// engine that invoked it (one token space per run).
struct TokenAllocator {
  OpToken next = 1;
  OpToken alloc() { return next++; }
};

/// Foreign operations a calling engine deliberately left in flight while
/// calibrating — e.g. zombie chunks surrendered to crash recovery, whose
/// completions arrive whenever the dead node's outage ends.  `pending()`
/// reports how many are outstanding; `swallow(token)` consumes one foreign
/// completion (returns true when the token was foreign).
///
/// The optional churn hooks let calibration survive a node dying mid-probe
/// (otherwise the sample chain would stall for the whole outage):
/// `dead_nodes(now)` is polled after every completion and returns nodes the
/// caller has just declared dead; the calibrator abandons their pending
/// samples, handing each stalled token (plus the real task it carried, if
/// any) back through `surrender` so the caller can swallow the eventual
/// zombie completion and re-queue the task.  Abandoned nodes are dropped
/// from the ranking.
struct ForeignOps {
  std::function<std::size_t()> pending;
  std::function<bool(OpToken)> swallow;
  std::function<std::vector<NodeId>(Seconds)> dead_nodes;
  std::function<void(OpToken, NodeId, const workloads::TaskSpec&,
                     bool is_probe)>
      surrender;
};

class Calibrator {
 public:
  Calibrator(SkeletonTraits traits, CalibrationParams params);

  /// Run Algorithm 1 on `pool`.  Consumes up to samples*|pool| tasks from
  /// `tasks` (marking them completed); when the queue runs dry a synthetic
  /// probe of the last seen shape is used instead.  `monitor` may be null
  /// (statistical strategies then degrade to TimeOnly).  Requires every
  /// backend operation in flight to be accounted for by `foreign`.
  [[nodiscard]] CalibrationResult run(Backend& backend,
                                      const std::vector<NodeId>& pool,
                                      TaskSource& tasks,
                                      perfmon::MonitorDaemon* monitor,
                                      gridsim::TraceRecorder* trace,
                                      TokenAllocator& tokens,
                                      const ForeignOps* foreign = nullptr);

  [[nodiscard]] const CalibrationParams& params() const { return params_; }

 private:
  SkeletonTraits traits_;
  CalibrationParams params_;
};

}  // namespace grasp::core
