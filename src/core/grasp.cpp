#include "core/grasp.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/backend_sim.hpp"

namespace grasp::core {

Seconds RunSummary::makespan() const {
  if (farm) return farm->makespan;
  if (pipeline) return pipeline->makespan;
  return Seconds::zero();
}

GraspProgram::GraspProgram(std::string name) : name_(std::move(name)) {}

GraspProgram& GraspProgram::use_task_farm(FarmParams params) {
  if (pipeline_params_)
    throw std::logic_error("GraspProgram: skeleton already selected");
  farm_params_ = std::move(params);
  return *this;
}

GraspProgram& GraspProgram::use_pipeline(PipelineParams params,
                                         workloads::PipelineSpec spec,
                                         std::size_t item_count) {
  if (farm_params_)
    throw std::logic_error("GraspProgram: skeleton already selected");
  pipeline_params_ = std::move(params);
  pipeline_spec_ = std::move(spec);
  pipeline_items_ = item_count;
  return *this;
}

GraspProgram& GraspProgram::with_tasks(workloads::TaskSet tasks) {
  tasks_ = std::move(tasks);
  return *this;
}

GraspProgram& GraspProgram::on_nodes(std::vector<NodeId> pool) {
  pool_ = std::move(pool);
  return *this;
}

GraspExecutable GraspProgram::compile(const gridsim::Grid& grid) const {
  if (!farm_params_ && !pipeline_params_)
    throw std::logic_error("GraspProgram: no skeleton selected (programming "
                           "phase incomplete)");
  if (farm_params_ && !tasks_)
    throw std::logic_error("GraspProgram: farm selected but no task set");
  std::vector<NodeId> pool = pool_.empty() ? grid.node_ids() : pool_;
  return GraspExecutable(*this, grid, std::move(pool));
}

GraspExecutable::GraspExecutable(GraspProgram program,
                                 const gridsim::Grid& grid,
                                 std::vector<NodeId> pool)
    : program_(std::move(program)), grid_(&grid), pool_(std::move(pool)) {}

namespace {

/// Derive the calibration/execution timeline from the engine trace.
void append_dynamic_phases(const gridsim::TraceRecorder& trace,
                           Seconds makespan, RunSummary& summary) {
  using gridsim::TraceEventKind;
  Seconds cal_start = Seconds::zero();
  bool in_calibration = false;
  Seconds cursor = Seconds::zero();
  std::size_t calibrations = 0;
  for (const auto& e : trace.events()) {
    if (e.kind == TraceEventKind::CalibrationStarted) {
      if (cursor < e.at)
        summary.phases.push_back(
            {"execution", cursor, e.at, "monitored execution"});
      cal_start = e.at;
      in_calibration = true;
      ++calibrations;
    } else if (e.kind == TraceEventKind::CalibrationFinished &&
               in_calibration) {
      summary.phases.push_back(
          {"calibration", cal_start, e.at, "Algorithm 1"});
      in_calibration = false;
      cursor = e.at;
    } else {
      // Membership transitions appear as zero-width recovery records so the
      // timeline shows when the engine absorbed churn.
      const char* what = nullptr;
      switch (e.kind) {
        case TraceEventKind::NodeCrashDetected: what = "crash detected"; break;
        case TraceEventKind::NodeLeftPool: what = "node left"; break;
        case TraceEventKind::NodeJoinedPool: what = "node joined"; break;
        case TraceEventKind::NodeAdmitted: what = "newcomer admitted"; break;
        case TraceEventKind::NodeEvicted: what = "worker evicted"; break;
        default: break;
      }
      if (what != nullptr) {
        summary.phases.push_back(
            {"recovery", e.at, e.at,
             std::string(what) + " (node " + std::to_string(e.node.value) +
                 ")"});
      }
    }
  }
  if (cursor < makespan)
    summary.phases.push_back(
        {"execution", cursor, makespan, "monitored execution"});
  // Recovery records are pushed as the trace is scanned, which lands them
  // ahead of the execution segment that contains them; restore the
  // documented chronological order (stable: equal timestamps keep their
  // relative order, so programming/compilation stay first).
  std::stable_sort(summary.phases.begin(), summary.phases.end(),
                   [](const PhaseRecord& a, const PhaseRecord& b) {
                     return a.began < b.began;
                   });
  // Every calibration after the first is an execution->calibration feedback
  // transition (the loop arrow of Fig. 1).
  summary.feedback_transitions = calibrations > 0 ? calibrations - 1 : 0;
}

}  // namespace

RunSummary GraspExecutable::execute() {
  RunSummary summary;
  summary.application = program_.name_;

  summary.phases.push_back({"programming", Seconds::zero(), Seconds::zero(),
                            "skeleton selection + parametrisation"});
  summary.phases.push_back({"compilation", Seconds::zero(), Seconds::zero(),
                            "bound to grid environment (SimBackend)"});

  SimBackend backend(*grid_);
  // membership_transitions counts the same events the recovery phase
  // records mark, but is read from the resilience counters (a registry
  // snapshot) rather than re-derived from the trace — the farm records one
  // trace event per counted transition (crash/leave/join/admit/evict), the
  // pipeline per crash/leave/join.
  if (program_.farm_params_) {
    summary.skeleton = "task_farm";
    TaskFarm farm(*program_.farm_params_);
    FarmReport report =
        farm.run(backend, *grid_, pool_, *program_.tasks_);
    append_dynamic_phases(report.trace, report.makespan, summary);
    const resil::ResilienceReport& r = report.resilience;
    summary.membership_transitions = r.crashes_detected + r.leaves + r.joins +
                                     r.admissions + r.evictions;
    summary.farm = std::move(report);
  } else {
    summary.skeleton = "pipeline";
    Pipeline pipe(*program_.pipeline_params_);
    PipelineReport report = pipe.run(backend, *grid_, pool_,
                                     *program_.pipeline_spec_,
                                     program_.pipeline_items_);
    append_dynamic_phases(report.trace, report.makespan, summary);
    const resil::ResilienceReport& r = report.resilience;
    summary.membership_transitions = r.crashes_detected + r.leaves + r.joins;
    summary.pipeline = std::move(report);
  }
  return summary;
}

}  // namespace grasp::core
