// Task source: the farm's shared work queue.
//
// Supports the operations the adaptive farm needs beyond plain FIFO:
// front-of-queue reinsertion (failed/abandoned dispatches go back first so
// order skew stays bounded) and duplicate-completion tracking for straggler
// reissue (first completion wins; late twins are discarded).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "workloads/task.hpp"

namespace grasp::core {

class TaskSource {
 public:
  explicit TaskSource(const workloads::TaskSet& set);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t remaining() const { return queue_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t completed() const { return completed_count_; }
  [[nodiscard]] bool all_done() const { return completed_count_ == total_; }

  /// Pop the next task.  Precondition: !empty().
  [[nodiscard]] workloads::TaskSpec pop();

  /// Return a dispatched-but-unfinished task to the *front* of the queue
  /// (used when a recalibration abandons in-flight work).
  void push_front(const workloads::TaskSpec& task);

  /// Record a completion.  Returns true when this is the first completion
  /// of the task (duplicates from straggler reissue return false).
  bool mark_completed(TaskId id);

  /// Retract a completion (farmer failover: the result died un-replicated
  /// with the coordinator, so the task must run again).  Returns true when
  /// the task was marked; the caller re-queues it via push_front.
  bool unmark_completed(TaskId id);

  [[nodiscard]] bool is_completed(TaskId id) const {
    if (id.value < kDenseLimit) {
      const std::size_t index = static_cast<std::size_t>(id.value);
      return index < dense_.size() && dense_[index] != 0;
    }
    return sparse_.count(id) != 0;
  }

 private:
  /// Task ids are assigned contiguously from zero by the generators, so
  /// completion tracking is a flat bitmap probed on every completion and
  /// requeue scan; ids outside the dense range (or the invalid sentinel)
  /// fall back to a hash set so exotic callers keep exact semantics.
  static constexpr std::uint64_t kDenseLimit = 1u << 22;

  std::deque<workloads::TaskSpec> queue_;
  std::vector<char> dense_;             ///< 1 = completed, index = id
  std::unordered_set<TaskId> sparse_;   ///< ids outside the dense range
  std::size_t completed_count_ = 0;
  std::size_t total_;
};

}  // namespace grasp::core
