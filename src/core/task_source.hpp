// Task source: the farm's shared work queue.
//
// Supports the operations the adaptive farm needs beyond plain FIFO:
// front-of-queue reinsertion (failed/abandoned dispatches go back first so
// order skew stays bounded) and duplicate-completion tracking for straggler
// reissue (first completion wins; late twins are discarded).
#pragma once

#include <deque>
#include <unordered_set>

#include "workloads/task.hpp"

namespace grasp::core {

class TaskSource {
 public:
  explicit TaskSource(const workloads::TaskSet& set);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t remaining() const { return queue_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t completed() const { return completed_.size(); }
  [[nodiscard]] bool all_done() const { return completed_.size() == total_; }

  /// Pop the next task.  Precondition: !empty().
  [[nodiscard]] workloads::TaskSpec pop();

  /// Return a dispatched-but-unfinished task to the *front* of the queue
  /// (used when a recalibration abandons in-flight work).
  void push_front(const workloads::TaskSpec& task);

  /// Record a completion.  Returns true when this is the first completion
  /// of the task (duplicates from straggler reissue return false).
  bool mark_completed(TaskId id);

  [[nodiscard]] bool is_completed(TaskId id) const {
    return completed_.count(id) != 0;
  }

 private:
  std::deque<workloads::TaskSpec> queue_;
  std::unordered_set<TaskId> completed_;
  std::size_t total_;
};

}  // namespace grasp::core
