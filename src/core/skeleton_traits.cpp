#include "core/skeleton_traits.hpp"

namespace grasp::core {

SkeletonTraits task_farm_traits() {
  SkeletonTraits t;
  t.name = "task_farm";
  t.independent_tasks = true;
  t.ordered_output = false;
  t.demand_driven = true;
  t.actions = kActionRecalibrate | kActionReissueTask | kActionResizeChunk;
  t.calibration_samples = 1;
  t.default_threshold_factor = 2.0;
  return t;
}

SkeletonTraits pipeline_traits() {
  SkeletonTraits t;
  t.name = "pipeline";
  t.independent_tasks = false;
  t.ordered_output = true;
  t.demand_driven = false;
  t.actions = kActionRecalibrate | kActionRemapStage | kActionReplicateStage;
  t.calibration_samples = 1;
  t.default_threshold_factor = 1.8;
  return t;
}

}  // namespace grasp::core
