// Adaptive pipeline (GRASP instantiation [7]).
//
// Stages are mapped to calibrated nodes (heaviest stage -> fittest node),
// items stream through with double buffering (each stage receives item i+1
// while computing item i), and per-stage service times feed Algorithm 2
// with the pipeline's bottleneck statistic (round-max).  When the threshold
// breaks, the bottleneck stage is remapped to the best spare node — the
// estimate extrapolates calibration fitness to current forecast load via
// the processor-sharing rule — paying an explicit state-migration transfer.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/backend.hpp"
#include "core/calibration.hpp"
#include "core/execution_monitor.hpp"
#include "core/skeleton_traits.hpp"
#include "gridsim/grid.hpp"
#include "gridsim/trace.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "perfmon/monitor.hpp"
#include "resil/report.hpp"
#include "workloads/task.hpp"

namespace grasp::core {

struct PipelineParams {
  CalibrationParams calibration;
  ThresholdPolicy threshold{ThresholdPolicy::Kind::RelativeMax, 1.8, 0.0};
  perfmon::MonitorDaemon::Params monitor;

  bool adaptation_enabled = true;
  std::size_t max_remaps = 16;
  /// Only remap when the candidate looks at least this much faster.
  double remap_advantage = 1.25;
  /// Stage state shipped old -> new node on remap (and to seed a replica).
  double stage_state_bytes = 1e6;

  /// Items the source keeps queued at stage 0 (back-pressure bound).
  std::size_t source_window = 4;

  /// Initial replica count per stage (empty = one replica each).  A
  /// replicated stage deals items across its replicas and resequences on
  /// exit, preserving the ordered-output trait.
  std::vector<std::size_t> stage_replicas;

  /// Structural adaptation: when a stage's *effective* service time (mean
  /// service / replicas) exceeds `replicate_imbalance_factor` times the
  /// median stage's, grow that stage by one replica on the best spare.
  /// This is the farm-the-bottleneck-stage transformation of the fully
  /// adaptive pipeline; 0 disables it.  Remapping still handles *degraded*
  /// nodes; replication handles stages that are heavy even on a good node.
  double replicate_imbalance_factor = 0.0;
  std::size_t max_replications = 8;
  /// Items a stage must process between structural actions (anti-thrash).
  std::size_t replication_cooldown_items = 20;

  /// Where items originate and results are collected; invalid = pool.front().
  NodeId source_node;

  /// Consume grid membership events (churn grids): a crashed or departed
  /// replica node fails over to the best live spare (items in flight there
  /// are re-shipped), joined nodes become spares (or revive a stage that
  /// lost its only replica).  The source node must not churn.
  bool membership_enabled = true;

  /// Period of the liveness tick on churn grids: a one-shot backend timer,
  /// re-armed on every firing, that polls membership even when no stage
  /// completions are flowing — so a crash that stalls the whole stream
  /// (e.g. the sole in-flight item sat on the corpse) is noticed within one
  /// period instead of at the next completion.  Zero disables the tick;
  /// membership then advances only with completions, as before.
  Seconds membership_tick{1.0};

  /// How long a pipeline with a down stage (no spare) and nothing at all in
  /// flight keeps ticking while waiting for a joiner before declaring the
  /// run wedged.  Measured from the last completion or membership event.
  /// Only meaningful with membership_tick > 0 — the tick is what keeps the
  /// loop alive while waiting.
  Seconds down_stage_patience{1e4};

  /// Statistics-driven patience: when enabled, the wedged-wait bound
  /// adapts to the outage durations observed this run (Welford mean and
  /// variance over loss-to-rejoin gaps).  Once `patience_min_samples`
  /// rejoins have been measured, the effective bound becomes
  /// clamp(mean + patience_sigma * stddev, min_patience,
  /// down_stage_patience): a pool whose nodes return in seconds stops
  /// wasting the full fixed window on a node that will never come back,
  /// while `down_stage_patience` stays the hard cap, so the wedged-run
  /// guarantee is never weakened — only tightened.
  bool adaptive_patience = false;
  double patience_sigma = 4.0;
  Seconds min_patience{30.0};
  std::size_t patience_min_samples = 2;

  /// Online SLO bounds, evaluated on the liveness tick (see
  /// obs/watchdog.hpp).  The pipeline probes stream staleness (time since
  /// the last completion or membership event, against
  /// heartbeat_staleness_s).  All-zero disables the watchdog.
  obs::SloRules slos;

  /// Observability sink (non-owning; must outlive the run).  Null: the
  /// pipeline uses a private detail-disabled instance — counters still
  /// drive the report, histograms and spans are skipped.
  obs::Telemetry* telemetry = nullptr;
};

struct StageStats {
  StageId stage;
  NodeId node;                 ///< final primary replica's node
  std::size_t replicas = 1;    ///< final replica count
  std::size_t items = 0;
  double mean_service_s = 0.0;
  double busy_fraction = 0.0;  ///< summed over replicas (can exceed 1)
};

struct PipelineReport {
  Seconds makespan;
  std::size_t items_completed = 0;
  std::size_t remaps = 0;
  std::size_t replications = 0;
  std::size_t rounds = 0;
  double mean_latency_s = 0.0;  ///< item entry -> exit
  double p95_latency_s = 0.0;
  std::vector<StageStats> stages;
  std::vector<NodeId> final_mapping;
  resil::ResilienceReport resilience;  ///< zeros on churn-free runs
  gridsim::TraceRecorder trace;
  bool output_in_order = true;  ///< invariant check: items exit in order

  [[nodiscard]] double throughput() const {
    return makespan.value > 0.0
               ? static_cast<double>(items_completed) / makespan.value
               : 0.0;
  }
};

class Pipeline {
 public:
  explicit Pipeline(PipelineParams params);

  /// Stream `item_count` items through `spec` over `pool`.  Pool must hold
  /// at least spec.depth() nodes.
  ///
  /// Thin wrapper over a private single-tenant GridService (submit one
  /// PipelineJob, wait); the single-job service runs the engine inline on
  /// the caller's thread, so this is observably identical to run_engine.
  [[nodiscard]] PipelineReport run(Backend& backend,
                                   const gridsim::Grid& grid,
                                   const std::vector<NodeId>& pool,
                                   const workloads::PipelineSpec& spec,
                                   std::size_t item_count);

  /// The pipeline engine proper (blocking run loop); see TaskFarm::run_engine.
  [[nodiscard]] PipelineReport run_engine(Backend& backend,
                                          const gridsim::Grid& grid,
                                          const std::vector<NodeId>& pool,
                                          const workloads::PipelineSpec& spec,
                                          std::size_t item_count);

  [[nodiscard]] const PipelineParams& params() const { return params_; }

 private:
  PipelineParams params_;
  SkeletonTraits traits_;
};

}  // namespace grasp::core
