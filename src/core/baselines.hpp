// Non-adaptive comparators for the farm experiments.
//
// * StaticBlockFarm — the classic SPMD distribution: tasks are partitioned
//   round-robin across all pool nodes up front; every node processes its
//   block sequentially; no calibration, no monitoring, no stealing.  This
//   is the "non-adaptive" baseline the companion papers compare against.
// * make_demand_farm_params — the intermediate point: demand-driven farm
//   (pull scheduling soaks up rate differences) but no Algorithm 1/2.
// * OracleFarm — clairvoyant earliest-finish-time list scheduler with
//   access to the true grid models, including future load.  Not achievable
//   in practice; bounds what adaptation could possibly win.
#pragma once

#include "core/backend.hpp"
#include "core/task_farm.hpp"
#include "gridsim/grid.hpp"
#include "workloads/task.hpp"

namespace grasp::core {

struct BaselineReport {
  Seconds makespan;
  std::size_t tasks_completed = 0;
};

class StaticBlockFarm {
 public:
  /// Root defaults to pool.front().
  explicit StaticBlockFarm(NodeId root = NodeId::invalid());

  [[nodiscard]] BaselineReport run(Backend& backend,
                                   const std::vector<NodeId>& pool,
                                   const workloads::TaskSet& tasks);

 private:
  NodeId root_;
};

/// FarmParams for the demand-driven-but-not-adaptive farm: uses the whole
/// pool (select_fraction 1.0), calibration ranking is still executed (it
/// must place the first wave somewhere) but Algorithm 2 never fires.
[[nodiscard]] FarmParams make_demand_farm_params();

/// FarmParams with the paper's defaults for the fully adaptive farm.
[[nodiscard]] FarmParams make_adaptive_farm_params();

class OracleFarm {
 public:
  explicit OracleFarm(NodeId root = NodeId::invalid());

  /// Greedy earliest-finish-time schedule using true (future-aware) costs.
  /// Communication is charged like the real farm: input before compute,
  /// output after, all relative to the root.
  [[nodiscard]] BaselineReport run(const gridsim::Grid& grid,
                                   const std::vector<NodeId>& pool,
                                   const workloads::TaskSet& tasks);

 private:
  NodeId root_;
};

}  // namespace grasp::core
