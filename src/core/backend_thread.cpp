#include "core/backend_thread.hpp"

#include <chrono>

namespace grasp::core {

ThreadBackend::ThreadBackend(const gridsim::Grid& grid, Params params)
    : grid_(&grid),
      params_(params),
      epoch_(std::chrono::steady_clock::now()) {
  node_queues_.reserve(grid.node_count());
  for (std::size_t i = 0; i < grid.node_count(); ++i) {
    node_queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.emplace_back([this, i] { worker_loop(*node_queues_[i]); });
  }
  link_queue_ = std::make_unique<WorkerQueue>();
  threads_.emplace_back([this] { worker_loop(*link_queue_); });
}

ThreadBackend::~ThreadBackend() {
  for (auto& q : node_queues_) {
    const std::lock_guard<std::mutex> lock(q->mutex);
    q->stop = true;
    q->cv.notify_all();
  }
  {
    const std::lock_guard<std::mutex> lock(link_queue_->mutex);
    link_queue_->stop = true;
    link_queue_->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
}

Seconds ThreadBackend::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const double wall = std::chrono::duration<double>(elapsed).count();
  // Report in *virtual* seconds so engines see one time base everywhere.
  return Seconds{wall / params_.time_scale};
}

void ThreadBackend::enqueue(WorkerQueue& queue, Job job) {
  {
    const std::lock_guard<std::mutex> ready_lock(ready_mutex_);
    ++in_flight_;
  }
  const std::lock_guard<std::mutex> lock(queue.mutex);
  queue.jobs.push_back(std::move(job));
  queue.cv.notify_one();
}

void ThreadBackend::submit_compute(OpToken token, NodeId node, Mops work,
                                   std::function<void()> body) {
  const Seconds duration = grid_->node(node).compute_time(work, now());
  Job job{token, node, duration,
          params_.run_bodies ? std::move(body) : std::function<void()>{}};
  enqueue(*node_queues_[node.value], std::move(job));
}

void ThreadBackend::submit_transfer(OpToken token, NodeId from, NodeId to,
                                    Bytes payload) {
  const Seconds duration = grid_->transfer_time(from, to, payload, now());
  enqueue(*link_queue_, Job{token, to, duration, {}});
}

void ThreadBackend::worker_loop(WorkerQueue& queue) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue.mutex);
      queue.cv.wait(lock, [&] { return queue.stop || !queue.jobs.empty(); });
      if (queue.jobs.empty()) return;  // stop requested and drained
      job = std::move(queue.jobs.front());
      queue.jobs.pop_front();
    }
    const Seconds started = now();
    if (job.body) job.body();
    // Sleep out whatever the model says remains after real work ran.
    const double wall_budget = job.model_duration.value * params_.time_scale;
    const double wall_used = (now() - started).value * params_.time_scale;
    if (wall_budget > wall_used) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(wall_budget - wall_used));
    }
    complete(job, started);
  }
}

void ThreadBackend::complete(const Job& job, Seconds started) {
  {
    const std::lock_guard<std::mutex> lock(ready_mutex_);
    ready_.push_back(Completion{job.token, job.report_node, started, now()});
  }
  ready_cv_.notify_one();
}

std::optional<Completion> ThreadBackend::wait_next() {
  std::unique_lock<std::mutex> lock(ready_mutex_);
  if (ready_.empty() && in_flight_ == 0) return std::nullopt;
  ready_cv_.wait(lock, [&] { return !ready_.empty(); });
  const Completion c = ready_.front();
  ready_.pop_front();
  --in_flight_;
  return c;
}

std::size_t ThreadBackend::in_flight() const {
  const std::lock_guard<std::mutex> lock(ready_mutex_);
  return in_flight_;
}

}  // namespace grasp::core
