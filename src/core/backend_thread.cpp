#include "core/backend_thread.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace grasp::core {

namespace {

/// Wall-clock instant `wall_seconds` from now (steady clock granularity).
std::chrono::steady_clock::time_point deadline_after(double wall_seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(wall_seconds));
}

}  // namespace

ThreadBackend::ThreadBackend(const gridsim::Grid& grid, Params params)
    : grid_(&grid),
      params_(params),
      epoch_(std::chrono::steady_clock::now()) {
  node_queues_.reserve(grid.node_count());
  for (std::size_t i = 0; i < grid.node_count(); ++i) {
    node_queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.emplace_back([this, i] { worker_loop(*node_queues_[i]); });
  }
  link_queue_ = std::make_unique<WorkerQueue>();
  threads_.emplace_back([this] { worker_loop(*link_queue_); });
  timer_thread_ = std::thread([this] { timer_loop(); });
}

ThreadBackend::~ThreadBackend() {
  // Teardown abandons queued jobs and interrupts in-progress modelled waits:
  // no further completions are delivered, and a chunk stalled by a simulated
  // outage does not hold the destructor for its remaining modelled time.
  for (auto& q : node_queues_) {
    const std::lock_guard<std::mutex> lock(q->mutex);
    q->stop = true;
    q->cv.notify_all();
  }
  {
    const std::lock_guard<std::mutex> lock(link_queue_->mutex);
    link_queue_->stop = true;
    link_queue_->cv.notify_all();
  }
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_stop_ = true;
    timer_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
  timer_thread_.join();
}

Seconds ThreadBackend::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const double wall = std::chrono::duration<double>(elapsed).count();
  // Report in *virtual* seconds so engines see one time base everywhere.
  return Seconds{wall / params_.time_scale};
}

void ThreadBackend::enqueue(WorkerQueue& queue, Job job) {
  {
    const std::lock_guard<std::mutex> ready_lock(ready_mutex_);
    ++in_flight_;
  }
  const std::lock_guard<std::mutex> lock(queue.mutex);
  queue.jobs.push_back(std::move(job));
  queue.cv.notify_one();
}

void ThreadBackend::submit_compute(OpToken token, NodeId node, Mops work,
                                   std::function<void()> body) {
  const Seconds duration = grid_->node(node).compute_time(work, now());
  {
    const std::lock_guard<std::mutex> lock(ready_mutex_);
    computes_.emplace(token, ComputeState{duration, Seconds{-1.0}});
  }
  Job job{token, node, duration,
          params_.run_bodies ? std::move(body) : std::function<void()>{}};
  enqueue(*node_queues_[node.value], std::move(job));
}

double ThreadBackend::compute_progress(OpToken token) const {
  const std::lock_guard<std::mutex> lock(ready_mutex_);
  const auto it = computes_.find(token);
  if (it == computes_.end()) return 0.0;
  if (it->second.started.value < 0.0) return 0.0;  // still queued
  if (it->second.finished) return 1.0;
  if (it->second.model_duration.value <= 0.0) return 0.0;
  const double frac =
      (now() - it->second.started).value / it->second.model_duration.value;
  // Never report fully done while the op still runs: a real body may
  // outlast its modelled duration, and claiming 1.0 would let a checkpoint
  // salvage work whose side effects have not happened yet.
  return std::clamp(frac, 0.0, std::nextafter(1.0, 0.0));
}

void ThreadBackend::submit_transfer(OpToken token, NodeId from, NodeId to,
                                    Bytes payload) {
  const Seconds duration = grid_->transfer_time(from, to, payload, now());
  enqueue(*link_queue_, Job{token, to, duration, {}});
}

void ThreadBackend::submit_timer(OpToken token, Seconds delay) {
  if (delay.value < 0.0)
    throw std::invalid_argument("ThreadBackend: negative timer delay");
  {
    // Count the timer before it is armed: a wait_next racing the timer
    // thread must never observe "nothing pending" while the firing is due.
    const std::lock_guard<std::mutex> ready_lock(ready_mutex_);
    ++timers_pending_;
  }
  const Seconds started = now();
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_heap_.push_back(TimerEntry{
        deadline_after(delay.value * params_.time_scale), timer_seq_++, token,
        started});
    std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
    timer_cv_.notify_one();
  }
}

bool ThreadBackend::cancel_timer(OpToken token) {
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    const auto it =
        std::find_if(timer_heap_.begin(), timer_heap_.end(),
                     [&](const TimerEntry& e) { return e.token == token; });
    if (it != timer_heap_.end()) {
      timer_heap_.erase(it);
      std::make_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
      const std::lock_guard<std::mutex> ready_lock(ready_mutex_);
      --timers_pending_;
      return true;
    }
  }
  // Not pending: it may have fired but not yet been delivered.  The firing
  // path is atomic under timer_mutex_, so by here it is in ready_ or gone.
  const std::lock_guard<std::mutex> ready_lock(ready_mutex_);
  const auto it = std::find_if(
      ready_.begin(), ready_.end(),
      [&](const Completion& c) { return c.is_timer && c.token == token; });
  if (it != ready_.end()) {
    ready_.erase(it);
    return true;
  }
  return false;
}

void ThreadBackend::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  for (;;) {
    if (timer_stop_) return;
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock,
                     [&] { return timer_stop_ || !timer_heap_.empty(); });
      continue;
    }
    const auto deadline = timer_heap_.front().deadline;
    if (std::chrono::steady_clock::now() < deadline) {
      // Woken early by submit/cancel/stop: loop and re-evaluate the heap.
      timer_cv_.wait_until(lock, deadline);
      continue;
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerLater{});
    const TimerEntry due = timer_heap_.back();
    timer_heap_.pop_back();
    // Deliver while still holding timer_mutex_ so cancel_timer never finds
    // the token in neither structure while its firing is in transit.
    {
      const std::lock_guard<std::mutex> ready_lock(ready_mutex_);
      --timers_pending_;
      ready_.push_back(Completion{due.token, NodeId::invalid(), due.started,
                                  now(), true});
    }
    ready_cv_.notify_one();
  }
}

void ThreadBackend::worker_loop(WorkerQueue& queue) {
  std::unique_lock<std::mutex> lock(queue.mutex);
  for (;;) {
    queue.cv.wait(lock, [&] { return queue.stop || !queue.jobs.empty(); });
    if (queue.stop) return;  // teardown: abandon queued jobs
    Job job = std::move(queue.jobs.front());
    queue.jobs.pop_front();
    lock.unlock();
    const Seconds started = now();
    {
      // Transfers never registered a ComputeState; find() keeps them out.
      const std::lock_guard<std::mutex> ready_lock(ready_mutex_);
      const auto it = computes_.find(job.token);
      if (it != computes_.end()) it->second.started = started;
    }
    if (job.body) job.body();
    // Wait out whatever the model says remains after real work ran — on the
    // queue's condition variable, so the destructor can interrupt a stalled
    // op instead of sleeping out its modelled duration.
    const double wall_budget = job.model_duration.value * params_.time_scale;
    const double wall_used = (now() - started).value * params_.time_scale;
    lock.lock();
    if (wall_budget > wall_used) {
      const bool interrupted =
          queue.cv.wait_until(lock, deadline_after(wall_budget - wall_used),
                              [&] { return queue.stop; });
      if (interrupted) return;
    }
    if (queue.stop) return;
    lock.unlock();
    complete(job, started);
    lock.lock();
  }
}

void ThreadBackend::complete(const Job& job, Seconds started) {
  {
    const std::lock_guard<std::mutex> lock(ready_mutex_);
    const auto it = computes_.find(job.token);
    if (it != computes_.end()) it->second.finished = true;
    ready_.push_back(Completion{job.token, job.report_node, started, now()});
  }
  ready_cv_.notify_one();
}

std::optional<Completion> ThreadBackend::wait_next() {
  std::unique_lock<std::mutex> lock(ready_mutex_);
  if (ready_.empty() && in_flight_ == 0 && timers_pending_ == 0)
    return std::nullopt;
  ready_cv_.wait(lock, [&] { return !ready_.empty(); });
  const Completion c = ready_.front();
  ready_.pop_front();
  if (!c.is_timer) {
    --in_flight_;
    // Progress stays queryable (clamped to 1) until the completion is
    // delivered, matching SimBackend — a checkpoint tick racing a finished
    // worker must not read 0 off a done-but-undrained op.
    computes_.erase(c.token);
  }
  return c;
}

std::size_t ThreadBackend::in_flight() const {
  const std::lock_guard<std::mutex> lock(ready_mutex_);
  return in_flight_;
}

}  // namespace grasp::core
