#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "support/log.hpp"
#include "support/regression.hpp"
#include "support/stats.hpp"

namespace grasp::core {

const char* to_string(RankingStrategy s) {
  switch (s) {
    case RankingStrategy::TimeOnly: return "time_only";
    case RankingStrategy::Univariate: return "univariate";
    case RankingStrategy::Multivariate: return "multivariate";
  }
  return "unknown";
}

RankingStrategy ranking_strategy_from_string(const std::string& name) {
  if (name == "time_only") return RankingStrategy::TimeOnly;
  if (name == "univariate") return RankingStrategy::Univariate;
  if (name == "multivariate") return RankingStrategy::Multivariate;
  throw std::invalid_argument("unknown ranking strategy: " + name);
}

bool CalibrationResult::contains(NodeId node) const {
  return std::find(chosen.begin(), chosen.end(), node) != chosen.end();
}

Calibrator::Calibrator(SkeletonTraits traits, CalibrationParams params)
    : traits_(std::move(traits)), params_(params) {
  if (params_.select_count == 0 &&
      (params_.select_fraction <= 0.0 || params_.select_fraction > 1.0))
    throw std::invalid_argument("Calibrator: select_fraction out of (0,1]");
}

namespace {

/// Phases of one node's calibration sample (input -> compute -> output).
enum class Phase { Input, Compute, Output };

struct SampleOp {
  NodeId node;
  Phase phase;
  workloads::TaskSpec task;
  bool is_probe = false;   ///< synthetic: result does not count as a task
  Seconds sample_start;    ///< when the input transfer was submitted
  std::size_t samples_left = 0;  ///< further samples after this one
};

}  // namespace

CalibrationResult Calibrator::run(Backend& backend,
                                  const std::vector<NodeId>& pool,
                                  TaskSource& tasks,
                                  perfmon::MonitorDaemon* monitor,
                                  gridsim::TraceRecorder* trace,
                                  TokenAllocator& tokens,
                                  const ForeignOps* foreign) {
  if (pool.empty()) throw std::invalid_argument("Calibrator: empty pool");
  if (backend.in_flight() != (foreign ? foreign->pending() : 0))
    throw std::logic_error("Calibrator: backend has foreign ops in flight");

  const NodeId root = params_.root.is_valid() ? params_.root : pool.front();
  const std::size_t samples = params_.samples_per_node > 0
                                  ? params_.samples_per_node
                                  : std::max<std::size_t>(1, traits_.calibration_samples);

  CalibrationResult result;
  result.started = backend.now();
  if (trace)
    trace->record({backend.now(), gridsim::TraceEventKind::CalibrationStarted,
                   root, TaskId::invalid(), static_cast<double>(pool.size()),
                   "pool"});

  // Dispatch one sample to every node concurrently (Algorithm 1 line 1).
  std::unordered_map<OpToken, SampleOp> in_flight;
  std::unordered_map<NodeId, OnlineStats> spm_stats;  // seconds-per-Mop
  // Window over which each node executed its samples, so the statistical
  // adjustment correlates times with the load the node *actually faced*.
  std::unordered_map<NodeId, Seconds> window_begin, window_end;
  workloads::TaskSpec probe_shape;  // last real task seen; reused when dry
  probe_shape.work = Mops{1.0};
  probe_shape.input = Bytes{1e3};
  probe_shape.output = Bytes{1e3};

  auto launch_sample = [&](NodeId node, std::size_t samples_left) {
    SampleOp op;
    op.node = node;
    op.phase = Phase::Input;
    op.samples_left = samples_left;
    if (!tasks.empty()) {
      op.task = tasks.pop();
      op.is_probe = false;
      probe_shape = op.task;
    } else {
      op.task = probe_shape;
      op.task.id = TaskId::invalid();
      op.is_probe = true;
    }
    op.sample_start = backend.now();
    if (!window_begin.count(node)) window_begin[node] = op.sample_start;
    const OpToken token = tokens.alloc();
    backend.submit_transfer(token, root, node, op.task.input);
    if (trace && !op.is_probe)
      trace->record({backend.now(), gridsim::TraceEventKind::TaskDispatched,
                     node, op.task.id, op.task.work.value, "calibration"});
    in_flight.emplace(token, std::move(op));
  };

  // Warm starts: nodes the shared cache already has a fresh estimate for
  // enter the ranking with that value and skip their probe chain.  Their
  // sample window degenerates to [started, now], so the statistical
  // adjustment correlates them with the load they face right now.
  std::unordered_set<NodeId> warm_nodes;
  if (params_.spm_cache != nullptr && params_.warm_start) {
    for (const NodeId node : pool) {
      const auto cached = params_.spm_cache->lookup(node, backend.now());
      if (!cached) continue;
      spm_stats[node].add(*cached);
      warm_nodes.insert(node);
    }
  }
  result.nodes_warm_started = warm_nodes.size();

  for (const NodeId node : pool)
    if (warm_nodes.count(node) == 0) launch_sample(node, samples - 1);

  // Nodes that died mid-calibration: samples abandoned, excluded from the
  // ranking.
  std::unordered_set<NodeId> abandoned;
  auto abandon_dead_nodes = [&] {
    if (!foreign || !foreign->dead_nodes) return;
    for (const NodeId dead : foreign->dead_nodes(backend.now())) {
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        if (it->second.node == dead) {
          if (foreign->surrender)
            foreign->surrender(it->first, dead, it->second.task,
                               it->second.is_probe);
          it = in_flight.erase(it);
        } else {
          ++it;
        }
      }
      abandoned.insert(dead);
    }
  };

  // Drive the transfer->compute->transfer chain per node to completion.
  while (!in_flight.empty()) {
    const auto completion = backend.wait_next();
    if (!completion)
      throw std::logic_error("Calibrator: backend drained unexpectedly");
    if (monitor) monitor->advance_to(backend.now());
    abandon_dead_nodes();
    if (foreign && foreign->swallow && foreign->swallow(completion->token))
      continue;
    const auto it = in_flight.find(completion->token);
    if (it == in_flight.end())
      throw std::logic_error("Calibrator: unknown completion token");
    SampleOp op = std::move(it->second);
    in_flight.erase(it);

    switch (op.phase) {
      case Phase::Input: {
        op.phase = Phase::Compute;
        const OpToken token = tokens.alloc();
        std::function<void()> body;
        if (params_.task_body && !op.is_probe)
          body = [fn = params_.task_body, task = op.task] { fn(task); };
        backend.submit_compute(token, op.node, op.task.work, std::move(body));
        in_flight.emplace(token, std::move(op));
        break;
      }
      case Phase::Compute: {
        op.phase = Phase::Output;
        const OpToken token = tokens.alloc();
        backend.submit_transfer(token, op.node, root, op.task.output);
        in_flight.emplace(token, std::move(op));
        break;
      }
      case Phase::Output: {
        const Seconds elapsed = backend.now() - op.sample_start;
        const double spm = elapsed.value / std::max(1e-9, op.task.work.value);
        spm_stats[op.node].add(spm);
        window_end[op.node] = backend.now();
        // First completion wins, same as the execution phase: a sample task
        // may have been finished elsewhere meanwhile (a straggler twin, or
        // checkpoint recovery of a lost chunk that also carried it).
        if (!op.is_probe && tasks.mark_completed(op.task.id)) {
          ++result.tasks_consumed;
          if (trace)
            trace->record({backend.now(),
                           gridsim::TraceEventKind::TaskCompleted, op.node,
                           op.task.id, elapsed.value, "calibration"});
        }
        if (op.samples_left > 0) launch_sample(op.node, op.samples_left - 1);
        break;
      }
    }
  }

  // Build per-node scores with monitor context.  Nodes that died mid-
  // calibration (or never produced a sample) are not rankable.
  std::vector<NodeScore> scores;
  scores.reserve(pool.size());
  for (const NodeId node : pool) {
    if (abandoned.count(node) != 0 || spm_stats.count(node) == 0) continue;
    NodeScore s;
    s.node = node;
    s.observed_spm = spm_stats.at(node).mean();
    s.adjusted_spm = s.observed_spm;
    if (monitor) {
      // The load that matters is the one the node faced *while running its
      // sample*; a reading taken after the sample can miss a transient.
      const Seconds from = window_begin.count(node) ? window_begin.at(node)
                                                    : result.started;
      const Seconds to =
          window_end.count(node) ? window_end.at(node) : backend.now();
      s.observed_load = monitor->mean_load_between(node, from, to);
      s.observed_bandwidth = monitor->mean_bandwidth_between(node, from, to);
    }
    scores.push_back(s);
  }

  // Feed freshly measured nodes back into the shared cache (warm entries
  // would only re-store their own value, so they are skipped).
  if (params_.spm_cache != nullptr) {
    for (const auto& s : scores)
      if (warm_nodes.count(s.node) == 0)
        params_.spm_cache->store(s.node, s.observed_spm, backend.now());
  }

  // "Adjust T statistically" (Algorithm 1, statistical calibration branch).
  const bool statistical = params_.strategy != RankingStrategy::TimeOnly &&
                           monitor != nullptr && scores.size() >= 4;
  if (statistical) {
    std::vector<double> times;
    times.reserve(scores.size());
    for (const auto& s : scores) times.push_back(s.observed_spm);

    if (params_.strategy == RankingStrategy::Univariate) {
      std::vector<double> loads;
      loads.reserve(scores.size());
      for (const auto& s : scores) loads.push_back(s.observed_load);
      const UnivariateFit fit = fit_univariate(loads, times);
      for (auto& s : scores) {
        const double forecast = monitor->forecast_load(s.node);
        // Extrapolate the observation to the load we expect to face.
        s.adjusted_spm = std::max(
            0.0, s.observed_spm + fit.slope * (forecast - s.observed_load));
      }
      GRASP_LOG_INFO("calibration")
          << "univariate fit: slope=" << fit.slope << " r2=" << fit.r_squared;
    } else {  // Multivariate: predictors (load, 1/bandwidth)
      std::vector<std::vector<double>> rows;
      rows.reserve(scores.size());
      for (const auto& s : scores)
        rows.push_back({s.observed_load,
                        1.0 / std::max(1.0, s.observed_bandwidth)});
      const MultivariateFit fit = fit_multivariate(rows, times);
      if (fit.ok) {
        for (auto& s : scores) {
          const double load_fc = monitor->forecast_load(s.node);
          const double bw_fc =
              1.0 / std::max(1.0, monitor->forecast_bandwidth(s.node));
          const double bw_obs =
              1.0 / std::max(1.0, s.observed_bandwidth);
          s.adjusted_spm = std::max(
              0.0, s.observed_spm +
                       fit.coefficients[1] * (load_fc - s.observed_load) +
                       fit.coefficients[2] * (bw_fc - bw_obs));
        }
        GRASP_LOG_INFO("calibration")
            << "multivariate fit r2=" << fit.r_squared;
      } else {
        // Uniform bandwidth makes the 1/bw column collinear with the
        // intercept; drop it and regress on load alone rather than
        // abandoning the statistical adjustment entirely.
        std::vector<double> loads;
        loads.reserve(scores.size());
        for (const auto& s : scores) loads.push_back(s.observed_load);
        const UnivariateFit uni = fit_univariate(loads, times);
        for (auto& s : scores) {
          const double forecast = monitor->forecast_load(s.node);
          s.adjusted_spm = std::max(
              0.0, s.observed_spm + uni.slope * (forecast - s.observed_load));
        }
        GRASP_LOG_INFO("calibration")
            << "multivariate fit singular; fell back to load-only "
               "regression (slope=" << uni.slope << ")";
      }
    }
  }

  // Rank (fittest = smallest adjusted seconds-per-Mop) and select.
  std::sort(scores.begin(), scores.end(),
            [](const NodeScore& a, const NodeScore& b) {
              if (a.adjusted_spm != b.adjusted_spm)
                return a.adjusted_spm < b.adjusted_spm;
              return a.node < b.node;
            });
  std::size_t k = params_.select_count > 0
                      ? std::min(params_.select_count, scores.size())
                      : static_cast<std::size_t>(std::ceil(
                            params_.select_fraction *
                            static_cast<double>(scores.size())));
  k = std::min(std::max<std::size_t>(1, k), scores.size());

  if (params_.exclusion_ratio > 0.0 && !scores.empty()) {
    std::vector<double> all_spm;
    all_spm.reserve(scores.size());
    for (const auto& s : scores) all_spm.push_back(s.adjusted_spm);
    const double cutoff = params_.exclusion_ratio * median(all_spm);
    const std::size_t floor_keep = std::min<std::size_t>(scores.size(), 2);
    while (k > floor_keep && scores[k - 1].adjusted_spm > cutoff) --k;
  }

  result.ranking = scores;
  OnlineStats baseline;
  for (std::size_t i = 0; i < k; ++i) {
    result.chosen.push_back(scores[i].node);
    baseline.add(scores[i].adjusted_spm);
  }
  result.baseline_spm = baseline.mean();
  result.finished = backend.now();
  if (trace)
    trace->record({backend.now(),
                   gridsim::TraceEventKind::CalibrationFinished, root,
                   TaskId::invalid(), static_cast<double>(result.chosen.size()),
                   "chosen"});
  GRASP_LOG_INFO("calibration")
      << "selected " << result.chosen.size() << "/" << pool.size()
      << " nodes, baseline " << result.baseline_spm << " s/Mop";
  return result;
}

}  // namespace grasp::core
