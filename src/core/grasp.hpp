// The GRASP four-phase driver (Fig. 1 of the paper).
//
//   programming  -> skeleton selection and parametrisation   (static)
//   compilation  -> binding with the parallel environment    (static)
//   calibration  -> Algorithm 1, autonomic                   (dynamic)
//   execution    -> Algorithm 2, monitored + adaptive        (dynamic)
//
// Usage (the quickstart example in full):
//
//   GraspProgram program("sweep");            // phase 1: programming
//   program.use_task_farm(make_adaptive_farm_params());
//   program.with_tasks(task_set);
//   GraspExecutable exe = program.compile(grid);  // phase 2: compilation
//   RunSummary summary = exe.execute();       // phases 3 + 4
//
// The summary carries the per-phase timeline, including every feedback
// transition from execution back to calibration (the arrow in Fig. 1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/task_farm.hpp"
#include "gridsim/grid.hpp"
#include "workloads/task.hpp"

namespace grasp::core {

struct PhaseRecord {
  /// programming | compilation | calibration | execution | recovery.
  /// "recovery" records are zero-width membership transitions inside the
  /// execution phase: a detected crash, an announced leave, a join, an
  /// admission or an eviction.
  std::string phase;
  Seconds began;       ///< engine-clock time (static phases: 0-width stamps)
  Seconds ended;
  std::string detail;
};

struct RunSummary {
  std::string application;
  std::string skeleton;
  std::vector<PhaseRecord> phases;  ///< in chronological order
  std::size_t feedback_transitions = 0;  ///< execution -> calibration loops
  /// Membership transitions consumed by the engine (crash detections,
  /// leaves, joins, evictions); 0 on churn-free grids.
  std::size_t membership_transitions = 0;

  /// Exactly one of these is set, matching the selected skeleton.
  std::optional<FarmReport> farm;
  std::optional<PipelineReport> pipeline;

  [[nodiscard]] Seconds makespan() const;
};

class GraspExecutable;

/// Phase 1: programming.  Select and parameterise a skeleton, then attach
/// the problem instance.
class GraspProgram {
 public:
  explicit GraspProgram(std::string name);

  GraspProgram& use_task_farm(FarmParams params);
  GraspProgram& use_pipeline(PipelineParams params,
                             workloads::PipelineSpec spec,
                             std::size_t item_count);
  GraspProgram& with_tasks(workloads::TaskSet tasks);

  /// Restrict execution to a subset of the grid (default: every node).
  GraspProgram& on_nodes(std::vector<NodeId> pool);

  /// Phase 2: compilation — bind with the parallel environment.  The
  /// returned executable owns a SimBackend over `grid`; `grid` must outlive
  /// it.  Throws std::logic_error when no skeleton or workload was set.
  [[nodiscard]] GraspExecutable compile(const gridsim::Grid& grid) const;

 private:
  friend class GraspExecutable;
  std::string name_;
  std::optional<FarmParams> farm_params_;
  std::optional<PipelineParams> pipeline_params_;
  std::optional<workloads::PipelineSpec> pipeline_spec_;
  std::size_t pipeline_items_ = 0;
  std::optional<workloads::TaskSet> tasks_;
  std::vector<NodeId> pool_;
};

/// Phases 3 + 4: run calibration and monitored execution.
class GraspExecutable {
 public:
  /// Execute on the bound environment and assemble the phase timeline.
  [[nodiscard]] RunSummary execute();

 private:
  friend class GraspProgram;
  GraspExecutable(GraspProgram program, const gridsim::Grid& grid,
                  std::vector<NodeId> pool);

  GraspProgram program_;
  const gridsim::Grid* grid_;
  std::vector<NodeId> pool_;
};

}  // namespace grasp::core
