#include "core/baselines.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace grasp::core {

StaticBlockFarm::StaticBlockFarm(NodeId root) : root_(root) {}

BaselineReport StaticBlockFarm::run(Backend& backend,
                                    const std::vector<NodeId>& pool,
                                    const workloads::TaskSet& tasks) {
  if (pool.empty())
    throw std::invalid_argument("StaticBlockFarm: empty pool");
  const NodeId root = root_.is_valid() ? root_ : pool.front();

  // Round-robin block partition, then per node: one input transfer with the
  // whole block, sequential computes, one output transfer.
  std::unordered_map<std::uint64_t, std::vector<workloads::TaskSpec>> blocks;
  for (std::size_t i = 0; i < tasks.tasks.size(); ++i)
    blocks[pool[i % pool.size()].value].push_back(tasks.tasks[i]);

  struct NodePlan {
    NodeId node;
    std::vector<workloads::TaskSpec> block;
    enum class Phase { Input, Compute, Output } phase = Phase::Input;
  };
  std::unordered_map<OpToken, NodePlan> in_flight;
  OpToken next_token = 1;

  BaselineReport report;
  for (const NodeId n : pool) {
    auto it = blocks.find(n.value);
    if (it == blocks.end() || it->second.empty()) continue;
    NodePlan plan;
    plan.node = n;
    plan.block = std::move(it->second);
    Bytes input = Bytes::zero();
    for (const auto& t : plan.block) input += t.input;
    const OpToken token = next_token++;
    backend.submit_transfer(token, root, n, input);
    in_flight.emplace(token, std::move(plan));
  }

  Seconds finish = Seconds::zero();
  while (!in_flight.empty()) {
    const auto completion = backend.wait_next();
    if (!completion)
      throw std::logic_error("StaticBlockFarm: backend drained early");
    const auto it = in_flight.find(completion->token);
    if (it == in_flight.end())
      throw std::logic_error("StaticBlockFarm: unknown token");
    NodePlan plan = std::move(it->second);
    in_flight.erase(it);
    switch (plan.phase) {
      case NodePlan::Phase::Input: {
        plan.phase = NodePlan::Phase::Compute;
        Mops work = Mops::zero();
        for (const auto& t : plan.block) work += t.work;
        const OpToken token = next_token++;
        backend.submit_compute(token, plan.node, work);
        in_flight.emplace(token, std::move(plan));
        break;
      }
      case NodePlan::Phase::Compute: {
        plan.phase = NodePlan::Phase::Output;
        Bytes output = Bytes::zero();
        for (const auto& t : plan.block) output += t.output;
        const OpToken token = next_token++;
        backend.submit_transfer(token, plan.node, root, output);
        in_flight.emplace(token, std::move(plan));
        break;
      }
      case NodePlan::Phase::Output: {
        report.tasks_completed += plan.block.size();
        finish = std::max(finish, backend.now());
        break;
      }
    }
  }
  report.makespan = finish;
  return report;
}

FarmParams make_demand_farm_params() {
  FarmParams p;
  p.calibration.strategy = RankingStrategy::TimeOnly;
  p.calibration.select_fraction = 1.0;  // keep every node
  p.adaptation_enabled = false;
  p.reissue_stragglers = false;
  p.adaptive_chunking = false;
  return p;
}

FarmParams make_adaptive_farm_params() {
  FarmParams p;
  p.calibration.strategy = RankingStrategy::Univariate;
  // Keep every node that pulls its weight; drop only genuinely harmful
  // members (fitness worse than 4x the pool median).
  p.calibration.select_fraction = 1.0;
  p.calibration.exclusion_ratio = 4.0;
  p.threshold.kind = ThresholdPolicy::Kind::RelativeMin;
  p.threshold.z = 2.0;
  p.threshold.stale_after = 120.0;
  p.adaptation_enabled = true;
  p.reissue_stragglers = true;
  p.adaptive_chunking = false;
  return p;
}

OracleFarm::OracleFarm(NodeId root) : root_(root) {}

BaselineReport OracleFarm::run(const gridsim::Grid& grid,
                               const std::vector<NodeId>& pool,
                               const workloads::TaskSet& tasks) {
  if (pool.empty()) throw std::invalid_argument("OracleFarm: empty pool");
  const NodeId root = root_.is_valid() ? root_ : pool.front();

  // Earliest-finish-time list scheduling with perfect knowledge: for each
  // task in order, place it on the node that finishes it soonest given that
  // node's current availability and the true time-varying models.
  std::unordered_map<std::uint64_t, Seconds> available;
  for (const NodeId n : pool) available[n.value] = Seconds::zero();

  BaselineReport report;
  Seconds makespan = Seconds::zero();
  for (const auto& task : tasks.tasks) {
    Seconds best_finish = Seconds::infinity();
    NodeId best_node = pool.front();
    for (const NodeId n : pool) {
      const Seconds start = available[n.value];
      const Seconds in_done =
          start + grid.transfer_time(root, n, task.input, start);
      const Seconds comp_done =
          in_done + grid.node(n).compute_time(task.work, in_done);
      const Seconds finish =
          comp_done + grid.transfer_time(n, root, task.output, comp_done);
      if (finish < best_finish) {
        best_finish = finish;
        best_node = n;
      }
    }
    available[best_node.value] = best_finish;
    makespan = std::max(makespan, best_finish);
    ++report.tasks_completed;
  }
  report.makespan = makespan;
  return report;
}

}  // namespace grasp::core
