// Execution backend abstraction.
//
// The skeleton engines (farm, pipeline), calibration and the execution
// monitor are written once against this interface.  A backend supplies two
// asynchronous primitives — compute on a node, transfer between nodes — and
// a completion stream.  `SimBackend` resolves them in virtual time from the
// gridsim models (deterministic, fast: all experiments run here);
// `ThreadBackend` resolves them on real threads in wall-clock time
// (correctness demos, real payload execution).  Engines drive per-task state
// machines off the completion stream, so skeleton logic is identical on
// both.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "support/ids.hpp"

namespace grasp::core {

/// Token identifying one asynchronous operation; engines allocate them.
using OpToken = std::uint64_t;

/// One finished asynchronous operation (or a fired timer).
struct Completion {
  OpToken token = 0;
  NodeId node;        ///< computing node, or destination of a transfer
  Seconds started;    ///< when the operation was submitted
  Seconds finished;   ///< when it completed (backend clock)
  bool is_timer = false;  ///< a submit_timer firing, not a compute/transfer

  [[nodiscard]] Seconds duration() const { return finished - started; }
};

/// One element of a batch submission (see Backend::submit_batch).  A tagged
/// record rather than three overloads so a dispatch wave can mix computes,
/// transfers and timers while preserving their relative order.
struct OpRequest {
  enum class Kind { Compute, Transfer, Timer };

  Kind kind = Kind::Transfer;
  OpToken token = 0;
  NodeId node;                 ///< compute node
  NodeId from, to;             ///< transfer endpoints
  Mops work;                   ///< compute cost
  Bytes payload;               ///< transfer size
  Seconds delay;               ///< timer delay
  std::function<void()> body;  ///< compute body (threaded backend only)

  [[nodiscard]] static OpRequest compute(OpToken token, NodeId node, Mops work,
                                         std::function<void()> body = {}) {
    OpRequest r;
    r.kind = Kind::Compute;
    r.token = token;
    r.node = node;
    r.work = work;
    r.body = std::move(body);
    return r;
  }
  [[nodiscard]] static OpRequest transfer(OpToken token, NodeId from,
                                          NodeId to, Bytes payload) {
    OpRequest r;
    r.kind = Kind::Transfer;
    r.token = token;
    r.from = from;
    r.to = to;
    r.payload = payload;
    return r;
  }
  [[nodiscard]] static OpRequest timer(OpToken token, Seconds delay) {
    OpRequest r;
    r.kind = Kind::Timer;
    r.token = token;
    r.delay = delay;
    return r;
  }
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Current time on the backend's clock.  Virtual seconds for the
  /// simulator, wall-clock seconds since construction for threads.
  [[nodiscard]] virtual Seconds now() const = 0;

  /// Begin `work` Mops of compute on `node`.  Never blocks.  `body`, if
  /// non-null, is real user work executed by the threaded backend (the
  /// simulator ignores it: cost comes from the models).
  virtual void submit_compute(OpToken token, NodeId node, Mops work,
                              std::function<void()> body = {}) = 0;

  /// Begin moving `payload` from `from` to `to`.  Never blocks.
  virtual void submit_transfer(OpToken token, NodeId from, NodeId to,
                               Bytes payload) = 0;

  /// Arm a one-shot timer that fires `delay` (>= 0) after now().  The firing
  /// is delivered through wait_next as a Completion with `is_timer` set and
  /// an invalid node.  Timers are ordered: of two pending timers the earlier
  /// deadline is delivered first (ties by submission order), and a timer
  /// never fires before an operation whose completion time precedes its
  /// deadline.  Pending timers keep wait_next alive but are *not* counted by
  /// in_flight(), so engine drain invariants see real work only.
  virtual void submit_timer(OpToken token, Seconds delay) = 0;

  /// Cancel a timer.  Afterwards its completion is never delivered, whether
  /// it had already fired or not.  Returns true when the timer was still
  /// pending (or fired but undelivered); false when it was unknown or
  /// already delivered.
  virtual bool cancel_timer(OpToken token) = 0;

  /// Submit a wave of operations in one call.  Semantically identical to
  /// invoking the per-kind submit methods element-by-element in order —
  /// completion ordering, timer FIFO ties and failure behaviour are all
  /// preserved — but lets a backend resolve the whole wave with one bulk
  /// insert into its scheduling structure.  The engines route their dispatch
  /// rounds through this entry point; single operations (a tick re-arm, a
  /// phase transition) keep the direct per-kind calls.
  virtual void submit_batch(std::vector<OpRequest> requests) {
    for (OpRequest& r : requests) {
      switch (r.kind) {
        case OpRequest::Kind::Compute:
          submit_compute(r.token, r.node, r.work, std::move(r.body));
          break;
        case OpRequest::Kind::Transfer:
          submit_transfer(r.token, r.from, r.to, r.payload);
          break;
        case OpRequest::Kind::Timer:
          submit_timer(r.token, r.delay);
          break;
      }
    }
  }

  /// Fraction of an undelivered compute operation's modelled duration that
  /// has elapsed by now(), in [0, 1].  This is the progress signal a
  /// worker's periodic checkpoint message carries: the farmer samples it on
  /// the checkpoint tick to learn how far into a chunk a node is.  Unknown
  /// tokens — transfers, timers, never-submitted or already-delivered ops —
  /// report 0; an op that has not started running yet (queued behind
  /// another on the threaded backend) also reports 0.
  [[nodiscard]] virtual double compute_progress(OpToken token) const = 0;

  /// Block (or advance virtual time) until the next operation completes or
  /// timer fires.  Returns nullopt when nothing is in flight and no timer
  /// is pending.
  [[nodiscard]] virtual std::optional<Completion> wait_next() = 0;

  /// Number of operations submitted but not yet returned by wait_next.
  /// Pending timers are excluded.
  [[nodiscard]] virtual std::size_t in_flight() const = 0;
};

}  // namespace grasp::core
