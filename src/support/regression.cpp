#include "support/regression.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "support/stats.hpp"

namespace grasp {

double MultivariateFit::predict(std::span<const double> x) const {
  if (coefficients.empty()) return 0.0;
  assert(x.size() + 1 == coefficients.size());
  double y = coefficients[0];
  for (std::size_t i = 0; i < x.size(); ++i) y += coefficients[i + 1] * x[i];
  return y;
}

UnivariateFit fit_univariate(std::span<const double> xs,
                             std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("fit_univariate: size mismatch");
  UnivariateFit fit;
  fit.n = xs.size();
  if (xs.size() < 2) {
    fit.intercept = ys.empty() ? 0.0 : mean(ys);
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

bool solve_linear_system(std::vector<double>& a, std::vector<double>& b,
                         std::size_t n) {
  assert(a.size() == n * n && b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a[r * n + col]);
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i * n + c] * b[c];
    b[i] = acc / a[i * n + i];
  }
  return true;
}

MultivariateFit fit_multivariate(std::span<const std::vector<double>> rows,
                                 std::span<const double> ys) {
  MultivariateFit fit;
  fit.n = rows.size();
  if (rows.size() != ys.size())
    throw std::invalid_argument("fit_multivariate: size mismatch");
  if (rows.empty()) return fit;
  const std::size_t k = rows.front().size();
  for (const auto& r : rows)
    if (r.size() != k)
      throw std::invalid_argument("fit_multivariate: ragged feature rows");
  const std::size_t p = k + 1;  // predictors + intercept
  if (rows.size() < p) return fit;

  // Normal equations: (X^T X) beta = X^T y, with X = [1 | features].
  std::vector<double> xtx(p * p, 0.0);
  std::vector<double> xty(p, 0.0);
  std::vector<double> xrow(p, 1.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < k; ++j) xrow[j + 1] = rows[i][j];
    for (std::size_t r = 0; r < p; ++r) {
      xty[r] += xrow[r] * ys[i];
      for (std::size_t c = 0; c < p; ++c) xtx[r * p + c] += xrow[r] * xrow[c];
    }
  }
  if (!solve_linear_system(xtx, xty, p)) return fit;
  fit.coefficients = std::move(xty);
  fit.ok = true;

  // R^2 = 1 - SS_res / SS_tot.
  const double my = mean(ys);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double pred = fit.predict(rows[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r_squared = (ss_tot == 0.0) ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace grasp
