// Fixed-width console tables for experiment output.
//
// Every bench binary prints the rows a paper table would hold; this helper
// keeps the formatting consistent and the bench code free of iomanip noise.
#pragma once

#include <string>
#include <vector>

namespace grasp {

/// Column-aligned text table.  Usage:
///   Table t({"strategy", "noise", "accuracy"});
///   t.add_row({"time-only", "0.1", "0.93"});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into cells.
  static std::string num(double v, int precision = 3);
  static std::string num(long long v);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with a separator rule under the header.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace grasp
