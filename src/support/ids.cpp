#include "support/ids.hpp"

#include <ostream>

namespace grasp {

std::ostream& operator<<(std::ostream& os, NodeId id) {
  if (!id.is_valid()) return os << "node(<invalid>)";
  return os << "node(" << id.value << ")";
}

std::ostream& operator<<(std::ostream& os, TaskId id) {
  if (!id.is_valid()) return os << "task(<invalid>)";
  return os << "task(" << id.value << ")";
}

std::ostream& operator<<(std::ostream& os, Seconds s) {
  return os << s.value << "s";
}

std::ostream& operator<<(std::ostream& os, Bytes b) {
  return os << b.value << "B";
}

std::ostream& operator<<(std::ostream& os, Mops m) {
  return os << m.value << "Mops";
}

}  // namespace grasp
