// Deterministic pseudo-random number generation.
//
// Every stochastic input in the repository (task costs, load traces, sensor
// noise) is drawn from an explicitly seeded generator so that simulation runs
// are reproducible bit-for-bit.  We implement xoshiro256** (Blackman &
// Vigna) seeded through SplitMix64 rather than relying on std::mt19937,
// because (a) the state is small enough to copy into every model object and
// (b) `split()` lets a parent generator derive statistically independent
// child streams — one per node, per link, per workload — so adding a node
// never perturbs the random sequence seen by the others.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace grasp {

/// SplitMix64: used to expand a 64-bit seed into generator state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
///
/// Satisfies std::uniform_random_bit_generator so it can also drive the
/// standard <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 as recommended by the xoshiro authors.
  constexpr explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream.  Mixing the parent's next output
  /// with a caller-chosen tag keeps child streams distinct even when many
  /// are split at the same point.
  [[nodiscard]] constexpr Rng split(std::uint64_t tag = 0) {
    return Rng(next() ^ (0xd2b74407b1ce6e93ULL * (tag + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal such that the *underlying* normal has parameters (mu, sigma).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed costs).
  double pareto(double x_m, double alpha) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Bernoulli trial.
  constexpr bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace grasp
