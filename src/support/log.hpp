// Leveled logging with a process-global threshold.
//
// The skeletons log adaptation decisions (recalibrations, node swaps, stage
// remaps) at Info; the simulator logs event-level detail at Debug.  Tests
// and benches run at Warn by default to keep output clean.
#pragma once

#include <sstream>
#include <string>

namespace grasp {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global log threshold.  Atomic: safe to read from worker threads
/// and to change mid-run (new statements pick up the new level).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Optional structured sink: receives every line at Info or above —
/// regardless of the stderr threshold — so an attached JSONL exporter
/// captures adaptation decisions even when stderr stays quiet at Warn.
/// Plain function pointer + user cookie keeps the support layer free of
/// std::function; obs::attach_log_sink wraps this for the JSONL writer.
/// One sink at a time; pass (nullptr, nullptr) to detach.  The sink is
/// invoked under the sink mutex and must be thread-safe itself only if it
/// shares state outside the callback.
using LogSinkFn = void (*)(void* user, LogLevel level, const char* level_name,
                           const std::string& component,
                           const std::string& message);
void set_log_sink(LogSinkFn sink, void* user);
/// True when a sink is attached (fast atomic check for LogStatement).
[[nodiscard]] bool log_sink_attached();

/// Emit one line if `level` passes the stderr threshold or the sink wants
/// it.  The stderr write is a single pre-formatted string under one mutex,
/// so concurrent workers never interleave fragments of a line.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {
/// Builds the message lazily: the stream body only runs when enabled.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)),
        enabled_(level >= log_level() ||
                 (level >= LogLevel::Info && log_sink_attached())) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() {
    if (enabled_) log_line(level_, component_, stream_.str());
  }
  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace grasp

#define GRASP_LOG_DEBUG(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Debug, component)
#define GRASP_LOG_INFO(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Info, component)
#define GRASP_LOG_WARN(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Warn, component)
#define GRASP_LOG_ERROR(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Error, component)
