// Leveled logging with a process-global threshold.
//
// The skeletons log adaptation decisions (recalibrations, node swaps, stage
// remaps) at Info; the simulator logs event-level detail at Debug.  Tests
// and benches run at Warn by default to keep output clean.
#pragma once

#include <sstream>
#include <string>

namespace grasp {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global log threshold (not thread-safe to *change* mid-run; set it
/// once at startup).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {
/// Builds the message lazily: the stream body only runs when enabled.
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)),
        enabled_(level >= log_level()) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() {
    if (enabled_) log_line(level_, component_, stream_.str());
  }
  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace grasp

#define GRASP_LOG_DEBUG(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Debug, component)
#define GRASP_LOG_INFO(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Info, component)
#define GRASP_LOG_WARN(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Warn, component)
#define GRASP_LOG_ERROR(component) \
  ::grasp::detail::LogStatement(::grasp::LogLevel::Error, component)
