// Fixed-capacity ring buffer for bounded observation histories.
//
// Monitoring keeps a sliding window of recent samples per node; once the
// window is full the oldest sample is dropped.  This container never
// allocates after construction.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace grasp {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : data_(capacity), capacity_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("RingBuffer: capacity must be positive");
  }

  /// Append, evicting the oldest element when full.
  void push(const T& value) {
    data_[(head_ + size_) % capacity_] = value;
    if (size_ < capacity_) {
      ++size_;
    } else {
      head_ = (head_ + 1) % capacity_;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == capacity_; }

  /// Element i, with 0 the *oldest* retained element.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return data_[(head_ + i) % capacity_];
  }

  /// Most recently pushed element.  Precondition: not empty.
  [[nodiscard]] const T& back() const {
    if (empty()) throw std::out_of_range("RingBuffer::back on empty buffer");
    return (*this)[size_ - 1];
  }

  /// Oldest retained element.  Precondition: not empty.
  [[nodiscard]] const T& front() const {
    if (empty()) throw std::out_of_range("RingBuffer::front on empty buffer");
    return (*this)[0];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Copy out in oldest-to-newest order (for batch statistics).
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> data_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace grasp
