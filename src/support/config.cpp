#include "support/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace grasp {

std::string trim(const std::string& s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = std::find_if_not(s.begin(), s.end(), is_space);
  auto end = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
  if (begin >= end) return {};
  return std::string(begin, end);
}

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("Config: missing '=' on line " +
                               std::to_string(line_no));
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty())
      throw std::runtime_error("Config: empty key on line " +
                               std::to_string(line_no));
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::override_with(const std::vector<std::string>& assignments) {
  for (const auto& token : assignments) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("Config: override '" + token +
                               "' is not key=value");
    set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
  }
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' value '" + *v +
                             "' is not an integer");
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' value '" + *v +
                             "' is not a number");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::string lowered = *v;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "true" || lowered == "1" || lowered == "yes" || lowered == "on")
    return true;
  if (lowered == "false" || lowered == "0" || lowered == "no" || lowered == "off")
    return false;
  throw std::runtime_error("Config: key '" + key + "' value '" + *v +
                           "' is not a boolean");
}

}  // namespace grasp
