#include "support/csv.hpp"

#include <stdexcept>

namespace grasp {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty())
    throw std::invalid_argument("CsvWriter: header must not be empty");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  write_row(cells);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << escape(cells[i]);
    if (i + 1 < cells.size()) out_ << ',';
  }
  out_ << '\n';
}

}  // namespace grasp
