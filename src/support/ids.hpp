// Strong identifier and unit types used across the GRASP libraries.
//
// Raw integers and doubles are easy to transpose (node index vs. task index,
// seconds vs. megabytes).  Every externally visible quantity therefore gets a
// distinct, zero-overhead wrapper type.  The wrappers are aggregates with a
// single `value` member: cheap to copy, trivially hashable, and ordered so
// they can key maps and sort results.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace grasp {

/// CRTP base for strongly typed integral identifiers.
///
/// Provides ordering, equality and an `invalid()` sentinel.  Derived types
/// add nothing; they exist purely so `NodeId` and `TaskId` cannot be mixed.
template <typename Tag, typename Rep = std::uint64_t>
struct StrongId {
  using rep_type = Rep;

  Rep value{std::numeric_limits<Rep>::max()};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  /// Sentinel meaning "no such entity".
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }
  [[nodiscard]] constexpr bool is_valid() const {
    return value != std::numeric_limits<Rep>::max();
  }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

struct NodeTag {};
struct TaskTag {};
struct LinkTag {};
struct SiteTag {};
struct StageTag {};
struct ItemTag {};

/// Identifies one processing element (a "node") in the grid.
using NodeId = StrongId<NodeTag>;
/// Identifies one unit of farm work.
using TaskId = StrongId<TaskTag>;
/// Identifies one network link in the topology.
using LinkId = StrongId<LinkTag>;
/// Identifies one administrative site (cluster) of the grid.
using SiteId = StrongId<SiteTag>;
/// Identifies one pipeline stage.
using StageId = StrongId<StageTag>;
/// Identifies one item flowing through a pipeline.
using ItemId = StrongId<ItemTag>;

/// MPI-style process rank inside a communicator (small, signed by tradition).
struct Rank {
  int value{-1};
  constexpr Rank() = default;
  constexpr explicit Rank(int v) : value(v) {}
  [[nodiscard]] constexpr bool is_valid() const { return value >= 0; }
  friend constexpr auto operator<=>(Rank, Rank) = default;
};

// ---------------------------------------------------------------------------
// Units.  All times are double seconds of *whichever clock drives the run*
// (virtual in simulation, steady_clock in the threaded backend).  Work is
// measured in abstract mega-operations so node speed (Mops/s) divides it.
// ---------------------------------------------------------------------------

/// A duration or instant in seconds.  Arithmetic is deliberately permissive
/// (instant vs. duration distinction is not worth the friction here), but the
/// type keeps seconds from mixing with bytes or Mops.
struct Seconds {
  double value{0.0};
  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : value(v) {}
  friend constexpr auto operator<=>(Seconds, Seconds) = default;
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds{a.value + b.value};
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds{a.value - b.value};
  }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds{a.value * k};
  }
  friend constexpr Seconds operator*(double k, Seconds a) {
    return Seconds{a.value * k};
  }
  friend constexpr Seconds operator/(Seconds a, double k) {
    return Seconds{a.value / k};
  }
  constexpr Seconds& operator+=(Seconds o) {
    value += o.value;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds o) {
    value -= o.value;
    return *this;
  }
  [[nodiscard]] static constexpr Seconds zero() { return Seconds{0.0}; }
  [[nodiscard]] static constexpr Seconds infinity() {
    return Seconds{std::numeric_limits<double>::infinity()};
  }
};

/// Message or payload size in bytes.
struct Bytes {
  double value{0.0};
  constexpr Bytes() = default;
  constexpr explicit Bytes(double v) : value(v) {}
  friend constexpr auto operator<=>(Bytes, Bytes) = default;
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.value + b.value};
  }
  friend constexpr Bytes operator*(Bytes a, double k) {
    return Bytes{a.value * k};
  }
  constexpr Bytes& operator+=(Bytes o) {
    value += o.value;
    return *this;
  }
  [[nodiscard]] static constexpr Bytes zero() { return Bytes{0.0}; }
};

/// Abstract computational work: mega-operations.  A node of speed s Mops/s
/// completes `Mops{w}` in `w / s` seconds at zero background load.
struct Mops {
  double value{0.0};
  constexpr Mops() = default;
  constexpr explicit Mops(double v) : value(v) {}
  friend constexpr auto operator<=>(Mops, Mops) = default;
  friend constexpr Mops operator+(Mops a, Mops b) {
    return Mops{a.value + b.value};
  }
  friend constexpr Mops operator*(Mops a, double k) {
    return Mops{a.value * k};
  }
  constexpr Mops& operator+=(Mops o) {
    value += o.value;
    return *this;
  }
  [[nodiscard]] static constexpr Mops zero() { return Mops{0.0}; }
};

/// Bandwidth in bytes per second.
struct BytesPerSecond {
  double value{0.0};
  constexpr BytesPerSecond() = default;
  constexpr explicit BytesPerSecond(double v) : value(v) {}
  friend constexpr auto operator<=>(BytesPerSecond, BytesPerSecond) = default;
};

/// Time to push `b` bytes through bandwidth `bw` (latency excluded).
[[nodiscard]] constexpr Seconds transfer_time(Bytes b, BytesPerSecond bw) {
  if (bw.value <= 0.0) return Seconds::infinity();
  return Seconds{b.value / bw.value};
}

std::ostream& operator<<(std::ostream& os, NodeId id);
std::ostream& operator<<(std::ostream& os, TaskId id);
std::ostream& operator<<(std::ostream& os, Seconds s);
std::ostream& operator<<(std::ostream& os, Bytes b);
std::ostream& operator<<(std::ostream& os, Mops m);

}  // namespace grasp

template <typename Tag, typename Rep>
struct std::hash<grasp::StrongId<Tag, Rep>> {
  std::size_t operator()(grasp::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};

template <>
struct std::hash<grasp::Rank> {
  std::size_t operator()(grasp::Rank r) const noexcept {
    return std::hash<int>{}(r.value);
  }
};
