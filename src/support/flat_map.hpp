// Flat associative containers for the hot paths.
//
// The engines key state by two kinds of identifiers: operation tokens
// (dense, monotonically allocated, a handful in flight at once) and node
// ids (small integers assigned contiguously by the grid builder).  At those
// sizes a contiguous vector beats a node-based hash table on every axis —
// no per-element allocation, no hashing, one cache line per probe — so the
// per-event map lookups that used to dominate simulation profiles become
// linear scans over a few dozen bytes.
//
//   * FlatMap<K, V>  — insertion-ordered vector of (key, value) pairs with
//     linear find.  Intended for small live sets (in-flight operations,
//     armed timers, ledger entries).  Erase preserves insertion order, so
//     iteration is deterministic — a property the resilience layer relies
//     on for reproducible re-dispatch order.
//   * NodeMap<V>     — direct-indexed vector keyed by NodeId, auto-growing,
//     with a default value for untouched nodes.  O(1) access, no hashing;
//     relies on grid node ids being small and dense (they are: the grid
//     builder numbers nodes contiguously from zero).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/ids.hpp"

namespace grasp {

template <typename Key, typename Value>
class FlatMap {
 public:
  struct Item {
    Key key;
    Value value;
  };
  using iterator = typename std::vector<Item>::iterator;
  using const_iterator = typename std::vector<Item>::const_iterator;

  [[nodiscard]] Value* find(const Key& key) {
    for (Item& item : items_)
      if (item.key == key) return &item.value;
    return nullptr;
  }
  [[nodiscard]] const Value* find(const Key& key) const {
    for (const Item& item : items_)
      if (item.key == key) return &item.value;
    return nullptr;
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != nullptr;
  }

  /// Insert a new mapping.  The key must not be present.
  Value& emplace(const Key& key, Value value) {
    items_.push_back(Item{key, std::move(value)});
    return items_.back().value;
  }

  /// Remove the item at `pos`, preserving the insertion order of the
  /// survivors; returns the iterator to the next item.
  iterator erase(iterator pos) { return items_.erase(pos); }

  /// Remove `key`, preserving the insertion order of the survivors.
  /// Returns true when the key was present.
  bool erase(const Key& key) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->key == key) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Remove `key` and return its value.
  std::pair<bool, Value> take(const Key& key) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->key == key) {
        Value value = std::move(it->value);
        items_.erase(it);
        return {true, std::move(value)};
      }
    }
    return {false, Value{}};
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] iterator begin() { return items_.begin(); }
  [[nodiscard]] iterator end() { return items_.end(); }
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }

 private:
  std::vector<Item> items_;
};

template <typename Value>
class NodeMap {
 public:
  NodeMap() = default;
  /// A custom default requires a copyable Value (untouched slots are filled
  /// with copies); move-only Values use the value-initialized default.
  explicit NodeMap(Value default_value) : default_(std::move(default_value)) {
    static_assert(std::is_copy_constructible_v<Value>,
                  "NodeMap: custom default needs a copyable Value");
  }

  /// Mutable access; grows the table to cover `node`.
  Value& operator[](NodeId node) {
    const std::size_t index = check(node);
    if (index >= values_.size()) {
      if constexpr (std::is_copy_constructible_v<Value>) {
        values_.resize(index + 1, default_);
      } else {
        values_.resize(index + 1);  // value-init == default_ (see ctor)
      }
    }
    return values_[index];
  }

  /// Read-only access; untouched nodes — and ids outside the dense range,
  /// including the invalid sentinel — read as the default value.
  [[nodiscard]] const Value& at_or_default(NodeId node) const {
    if (!node.is_valid() || node.value >= kMaxDirectIndex) return default_;
    const auto index = static_cast<std::size_t>(node.value);
    return index < values_.size() ? values_[index] : default_;
  }

  /// Dense slot storage, index == node id (for full-table scans).
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  void clear() { values_.clear(); }

 private:
  /// Grid node ids are dense small integers; the ceiling only guards
  /// against an invalid/sentinel id blowing up the table.
  static constexpr std::size_t kMaxDirectIndex = 1u << 22;

  static std::size_t check(NodeId node) {
    if (!node.is_valid() || node.value >= kMaxDirectIndex)
      throw std::out_of_range("NodeMap: node id outside dense range");
    return static_cast<std::size_t>(node.value);
  }

  std::vector<Value> values_;
  Value default_{};
};

}  // namespace grasp
