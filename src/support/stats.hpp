// Descriptive and online statistics used by calibration, monitoring and the
// experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace grasp {

/// Numerically stable single-pass accumulator (Welford) for mean/variance,
/// plus min/max.  Suitable for unbounded streams of observations.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the observations; 0 when empty.
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  [[nodiscard]] double cv() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator into this one (parallel reduction identity).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average; alpha in (0, 1].
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double x);
  [[nodiscard]] bool empty() const { return !seeded_; }
  /// Current smoothed value; 0 before the first observation.
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

// Batch helpers.  All take read-only spans and do not modify the input.

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  ///< unbiased
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);
[[nodiscard]] double sum(std::span<const double> xs);

/// q-quantile (0 <= q <= 1) with linear interpolation between order
/// statistics (type-7, the numpy/R default).  Copies and sorts internally.
[[nodiscard]] double quantile(std::span<const double> xs, double q);
[[nodiscard]] double median(std::span<const double> xs);

/// Pearson product-moment correlation; 0 if either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Spearman rank correlation (Pearson on fractional ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

/// Kendall's tau-b rank correlation (handles ties); O(n^2), fine for the
/// pool sizes calibration deals with.
[[nodiscard]] double kendall_tau(std::span<const double> xs,
                                 std::span<const double> ys);

/// Fractional ranks of `xs` (1-based, ties receive their average rank).
[[nodiscard]] std::vector<double> fractional_ranks(std::span<const double> xs);

}  // namespace grasp
