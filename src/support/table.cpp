#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace grasp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty())
    throw std::invalid_argument("Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace grasp
