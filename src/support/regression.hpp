// Ordinary least squares regression.
//
// GRASP's statistical calibration (Algorithm 1, "Adjust T statistically")
// extrapolates node performance from execution time, processor load and
// bandwidth utilisation using univariate and multivariate linear regression.
// The problem sizes are tiny (observations = nodes or calibration samples,
// predictors <= 3) so the normal-equations route with partially pivoted
// Gaussian elimination is accurate enough and dependency-free.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace grasp {

/// Result of a simple (one predictor) linear regression y = a + b x.
struct UnivariateFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r_squared = 0.0;  ///< coefficient of determination in [0, 1]
  std::size_t n = 0;       ///< observations used

  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

/// Result of a multiple linear regression y = b0 + b1 x1 + ... + bk xk.
struct MultivariateFit {
  std::vector<double> coefficients;  ///< [b0, b1, ..., bk]; b0 is intercept
  double r_squared = 0.0;
  std::size_t n = 0;
  bool ok = false;  ///< false when the system was singular / underdetermined

  /// Predict for a feature vector x (length k, *without* the leading 1).
  [[nodiscard]] double predict(std::span<const double> x) const;
};

/// Fit y = a + b x by least squares.  Degenerate inputs (fewer than two
/// points, constant x) yield slope 0 and intercept mean(y).
[[nodiscard]] UnivariateFit fit_univariate(std::span<const double> xs,
                                           std::span<const double> ys);

/// Fit y = b0 + b1 x1 + ... + bk xk.  `rows` holds n feature vectors of
/// equal length k (without the leading constant).  Returns ok=false if the
/// normal equations are singular (collinear predictors or n <= k).
[[nodiscard]] MultivariateFit fit_multivariate(
    std::span<const std::vector<double>> rows, std::span<const double> ys);

/// Solve the dense linear system A x = b in place via Gaussian elimination
/// with partial pivoting.  A is n x n row-major.  Returns false when the
/// matrix is (numerically) singular.
bool solve_linear_system(std::vector<double>& a, std::vector<double>& b,
                         std::size_t n);

}  // namespace grasp
