// Key=value run configuration.
//
// Examples and bench binaries take small configuration files (or inline
// overrides such as "nodes=32 tasks=4000") describing grid shape and
// workload parameters, so experiment variants need no recompilation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace grasp {

/// Flat string map with typed accessors.  Syntax: one `key = value` per
/// line, `#` starts a comment, blank lines ignored.  Later keys override
/// earlier ones.
class Config {
 public:
  Config() = default;

  /// Parse from file contents / a file on disk.  Throws std::runtime_error
  /// on malformed lines (missing '=') or unreadable files.
  static Config parse(const std::string& text);
  static Config load(const std::string& path);

  /// Apply `key=value` tokens (e.g. from argv) on top of current values.
  void override_with(const std::vector<std::string>& assignments);

  void set(const std::string& key, const std::string& value);
  [[nodiscard]] bool contains(const std::string& key) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  /// Throws std::runtime_error when the value does not parse.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Trim ASCII whitespace from both ends (exposed for tests).
[[nodiscard]] std::string trim(const std::string& s);

}  // namespace grasp
