#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace grasp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << '[' << level_name(level) << "] [" << component << "] "
            << message << '\n';
}

}  // namespace grasp
