#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace grasp {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_log_mutex;

// Sink registration: the atomic flag gives LogStatement a cheap "anyone
// listening?" check; the mutex serialises attach/detach against calls so
// a sink can never be invoked after set_log_sink(nullptr, ...) returns.
std::atomic<bool> g_sink_attached{false};
std::mutex g_sink_mutex;
LogSinkFn g_sink = nullptr;
void* g_sink_user = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSinkFn sink, void* user) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = sink;
  g_sink_user = user;
  g_sink_attached.store(sink != nullptr, std::memory_order_release);
}

bool log_sink_attached() {
  return g_sink_attached.load(std::memory_order_acquire);
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level >= log_level()) {
    // Pre-format the whole line and write it in one shot so lines from
    // concurrent workers never interleave mid-line.
    std::string line;
    line.reserve(component.size() + message.size() + 16);
    line += '[';
    line += level_name(level);
    line += "] [";
    line += component;
    line += "] ";
    line += message;
    line += '\n';
    const std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << line;
  }
  if (level >= LogLevel::Info && log_sink_attached()) {
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_sink != nullptr)
      g_sink(g_sink_user, level, level_name(level), component, message);
  }
}

}  // namespace grasp
