#include "support/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace grasp {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::cv() const {
  if (mean_ == 0.0) return 0.0;
  return stddev() / std::abs(mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0)
    throw std::invalid_argument("Ewma: alpha must be in (0, 1]");
}

void Ewma::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> fractional_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j], 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const std::vector<double> rx = fractional_ranks(xs);
  const std::vector<double> ry = fractional_ranks(ys);
  return pearson(rx, ry);
}

double kendall_tau(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0.0) == (dy > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(concordant + discordant);
  const double denom = std::sqrt((n0 + static_cast<double>(ties_x)) *
                                 (n0 + static_cast<double>(ties_y)));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace grasp
