// Minimal CSV emission for experiment series (figure data).
//
// Bench binaries print human-readable tables to stdout and, when asked,
// write the underlying series as CSV so figures can be re-plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace grasp {

/// Streams rows to a CSV file.  Fields containing commas, quotes or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  /// Throws std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  /// Quote a single field if needed (exposed for testing).
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace grasp
