#include "svc/grid_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "obs/flight_recorder.hpp"
#include "svc/fair_share.hpp"

namespace grasp::svc {

namespace {

[[nodiscard]] bool terminal(JobStatus s) {
  return s == JobStatus::Completed || s == JobStatus::Failed ||
         s == JobStatus::Rejected;
}

}  // namespace

GridService::GridService(core::Backend& backend, const gridsim::Grid& grid,
                         std::vector<NodeId> pool)
    : GridService(backend, grid, std::move(pool), Params{}) {}

GridService::GridService(core::Backend& backend, const gridsim::Grid& grid,
                         std::vector<NodeId> pool, Params params)
    : backend_(backend),
      grid_(grid),
      pool_(std::move(pool)),
      params_(params),
      cache_(CalibrationCache::Params{params.calibration_max_age}),
      telemetry_(params.telemetry) {
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics;
    met_.submitted = m.counter("svc.jobs_submitted");
    met_.completed = m.counter("svc.jobs_completed");
    met_.failed = m.counter("svc.jobs_failed");
    met_.rejected = m.counter("svc.jobs_rejected");
    met_.reclamped = m.counter("svc.min_nodes_reclamped");
    met_.running = m.gauge("svc.jobs_running");
    met_.queued = m.gauge("svc.jobs_queued");
    met_.queue_wait_s = m.histogram("svc.queue_wait_s");
    met_.makespan_s = m.histogram("svc.job_makespan_s");
    if (params_.slos.any()) watchdog_.emplace(params_.slos, *telemetry_, "svc.");
  }
}

GridService::~GridService() {
  std::unique_lock<std::mutex> lk(mu_);
  // Scheduled arrivals die with the service.
  for (const auto& [token, job] : pending_arrivals_)
    backend_.cancel_timer(token);
  pending_arrivals_.clear();
  // Queued jobs never ran; drop them (their handles stay Queued).
  queue_.clear();
  // Running engines observe a premature end-of-stream: sticky nullopt,
  // one turn each, until every thread has unwound.
  for (;;) {
    reap(lk);
    if (running_.empty()) break;
    detail::JobState* victim = nullptr;
    for (const auto& job : running_)
      if (job->blocked) {
        victim = job.get();
        break;
      }
    if (victim == nullptr) break;  // unreachable under the turn protocol
    victim->deliver_nullopt = true;
    grant_turn(lk, *victim);
  }
}

// ------------------------------------------------------------ submission

JobHandle GridService::submit(FarmJob job, JobOptions options) {
  return submit_impl(std::move(job), std::move(options), std::nullopt);
}

JobHandle GridService::submit(PipelineJob job, JobOptions options) {
  return submit_impl(std::move(job), std::move(options), std::nullopt);
}

JobHandle GridService::submit_at(Seconds when, FarmJob job,
                                 JobOptions options) {
  return submit_impl(std::move(job), std::move(options), when);
}

JobHandle GridService::submit_at(Seconds when, PipelineJob job,
                                 JobOptions options) {
  return submit_impl(std::move(job), std::move(options), when);
}

JobHandle GridService::submit_impl(std::variant<FarmJob, PipelineJob> spec,
                                   JobOptions options,
                                   std::optional<Seconds> when) {
  if (!(options.weight > 0.0))
    throw std::invalid_argument("GridService: job weight must be > 0");
  if (!(options.max_share > 0.0) || options.max_share > 1.0)
    throw std::invalid_argument("GridService: max_share must be in (0, 1]");

  std::unique_lock<std::mutex> lk(mu_);
  auto job = std::make_shared<detail::JobState>();
  job->seq = next_seq_++;
  job->name = options.name.empty() ? "job-" + std::to_string(job->seq)
                                   : std::move(options.name);
  job->weight = options.weight;
  job->min_nodes = std::max<std::size_t>(options.min_nodes, 1);
  if (!pool_.empty()) job->min_nodes = std::min(job->min_nodes, pool_.size());
  job->max_share = options.max_share;
  job->spec = std::move(spec);
  // Per-job detection / economics policy: rewrite the engine params
  // bundled with the spec before the engine ever sees them.  Jobs that
  // leave the optionals empty run whatever the spec's params say, so the
  // default service behaviour is untouched.
  if (options.detection_mode.has_value() || options.farm_econ.has_value() ||
      options.slos.has_value()) {
    if (auto* farm = std::get_if<FarmJob>(&job->spec)) {
      if (options.detection_mode.has_value())
        farm->params.resilience.detector.mode = *options.detection_mode;
      if (options.farm_econ.has_value())
        farm->params.econ.enabled = *options.farm_econ;
      if (options.slos.has_value()) farm->params.slos = *options.slos;
    } else if (auto* pipe = std::get_if<PipelineJob>(&job->spec)) {
      if (options.detection_mode.has_value())
        pipe->params.adaptive_patience =
            *options.detection_mode == resil::DetectionMode::Accrual;
      if (options.slos.has_value()) pipe->params.slos = *options.slos;
    }
  }
  all_jobs_.push_back(job);
  if (telemetry_ != nullptr) telemetry_->metrics.inc(met_.submitted);

  if (when.has_value()) {
    // Materialise at backend time `when` via a service-owned timer (job
    // sequence 0 in the global token space).
    const Seconds delay{
        std::max(0.0, when->value - backend_.now().value)};
    const core::OpToken token = next_arrival_token_++;
    pending_arrivals_.emplace(token, job);
    backend_.submit_timer(token, delay);
    return JobHandle(job);
  }

  // A previous lone submit may be parked in the queue waiting for the
  // inline fast path; admit whatever actually fits before judging this
  // submit against the queue bound, so deferred-but-admissible jobs do
  // not count as backlog.
  if (!queue_.empty()) try_admit(lk);
  if (queue_.size() >= params_.max_queued_jobs) {
    job->status = JobStatus::Rejected;
    ++rejected_;
    if (telemetry_ != nullptr) telemetry_->metrics.inc(met_.rejected);
    return JobHandle(job);
  }
  job->submitted_at = backend_.now();
  queue_.push_back(job);
  update_gauges();
  // A lone job is left queued so wait() can take the inline fast path;
  // anything else is admitted eagerly (engine threads start and park on
  // their first wait_next).
  if (!inline_eligible()) try_admit(lk);
  return JobHandle(job);
}

// --------------------------------------------------------------- waiting

void GridService::wait(const JobHandle& handle) {
  if (!handle.valid())
    throw std::invalid_argument("GridService::wait: invalid handle");
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto& state = *handle.state_;
    pump_until(lk, [&] { return terminal(state.status); });
    if (state.status == JobStatus::Failed) error = state.error;
  }
  if (error) std::rethrow_exception(error);
}

void GridService::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  pump_until(lk, [&] {
    if (!pending_arrivals_.empty()) return false;
    for (const auto& job : all_jobs_)
      if (!terminal(job->status)) return false;
    return true;
  });
}

// -------------------------------------------------------- scheduler core

bool GridService::inline_eligible() const {
  return !params_.force_threaded && running_.empty() &&
         queue_.size() == 1 && pending_arrivals_.empty();
}

void GridService::pump_until(std::unique_lock<std::mutex>& lk,
                             const std::function<bool()>& done) {
  for (;;) {
    reap(lk);
    if (done()) return;
    if (inline_eligible()) {
      run_inline(lk);
      continue;
    }
    try_admit(lk);
    reap(lk);  // an admitted engine may run to completion on its first turn
    if (done()) return;
    if (running_.empty() && pending_arrivals_.empty()) {
      // Nothing can make progress: the predicate waits on a job that is
      // neither running nor able to arrive (e.g. wait() on a handle
      // whose service was saturated by max_concurrent_jobs = 0 jobs).
      // try_admit always admits onto an idle pool, so reaching here with
      // a pending predicate means the caller waits on a dropped job.
      return;
    }
    if (!pump_one(lk)) {
      // Backend has nothing in flight but live jobs remain — deliver the
      // end-of-stream verdict so their engines can unwind.
      bool progressed = false;
      for (const auto& job : running_) {
        if (!job->blocked) continue;
        job->deliver_nullopt = true;
        grant_turn(lk, *job);
        progressed = true;
        break;
      }
      if (!progressed) return;
    }
  }
}

bool GridService::pump_one(std::unique_lock<std::mutex>& lk) {
  auto completion = backend_.wait_next();
  if (!completion.has_value()) return false;
  const std::uint64_t seq = detail::seq_of(completion->token);
  if (seq == 0) {
    // Service arrival timer: the scheduled job materialises now.
    const auto it = pending_arrivals_.find(completion->token);
    if (it == pending_arrivals_.end()) return true;  // cancelled
    const StatePtr job = it->second;
    pending_arrivals_.erase(it);
    if (queue_.size() >= params_.max_queued_jobs) {
      job->status = JobStatus::Rejected;
      ++rejected_;
      if (telemetry_ != nullptr) telemetry_->metrics.inc(met_.rejected);
      return true;
    }
    job->submitted_at = backend_.now();
    queue_.push_back(job);
    update_gauges();
    return true;
  }
  const StatePtr owner = find_running(seq);
  if (owner == nullptr) return true;  // tenant retired: swallow the zombie
  completion->token = detail::to_local(completion->token);
  owner->inbox.push_back(*completion);
  if (owner->blocked) grant_turn(lk, *owner);
  return true;
}

void GridService::try_admit(std::unique_lock<std::mutex>& lk) {
  const Seconds now = backend_.now();
  invalidate_departed(now);
  // Allocate only over live members: handing a crashed/departed node to a
  // tenant wastes its allocation (and an all-dead grant kills the engine
  // at t=0).  Churn-free grids take the identity path.
  const gridsim::ChurnTimeline* churn = grid_.churn();
  const std::vector<NodeId> live =
      churn != nullptr ? churn->members_at(pool_, now) : pool_;
  while (!queue_.empty()) {
    if (params_.max_concurrent_jobs != 0 &&
        running_.size() >= params_.max_concurrent_jobs)
      break;
    const StatePtr job = queue_.front();
    if (pool_.empty()) {
      // Let the engine issue its own empty-pool diagnosis.
      queue_.pop_front();
      start_job(lk, job, {});
      continue;
    }
    if (live.empty()) break;  // nobody alive: the head waits for a rejoin
    // min_nodes was clamped against the pool at submit; churn may have
    // shrunk live membership below it since, and with FIFO head-only
    // admission an unclamped head would starve the whole queue forever.
    if (job->min_nodes > live.size()) {
      job->min_nodes = live.size();
      ++min_nodes_reclamps_;
      if (telemetry_ != nullptr) telemetry_->metrics.inc(met_.reclamped);
    }
    std::unordered_set<NodeId> busy;
    for (const auto& r : running_)
      busy.insert(r->nodes.begin(), r->nodes.end());
    double running_weight = 0.0;
    for (const auto& r : running_) running_weight += r->weight;
    std::vector<NodeCapacity> free_nodes;
    double total_mops = 0.0;
    for (const NodeId node : live) {
      const double mops = capacity_mops(node);
      total_mops += mops;
      if (busy.count(node) == 0) free_nodes.push_back({node, mops});
    }
    std::vector<NodeId> allocation = pick_allocation(
        free_nodes, total_mops, running_weight,
        ShareRequest{job->weight, job->min_nodes, job->max_share,
                     params_.cap_share_to_free});
    if (allocation.empty()) break;  // head-of-line waits: FIFO, no skipping
    queue_.pop_front();
    start_job(lk, job, std::move(allocation));
  }
  update_gauges();
}

void GridService::invalidate_departed(Seconds now) {
  if (!params_.use_calibration_cache) return;
  const gridsim::ChurnTimeline* churn = grid_.churn();
  if (churn == nullptr) return;
  for (const auto& ev : churn->events_between(churn_scan_, now)) {
    if (ev.kind == gridsim::ChurnEventKind::Crash ||
        ev.kind == gridsim::ChurnEventKind::Leave)
      cache_.invalidate(ev.node);
  }
  churn_scan_ = now;
}

double GridService::capacity_mops(NodeId node) const {
  if (params_.use_calibration_cache) {
    const auto cached = cache_.lookup(node, backend_.now());
    if (cached.has_value() && *cached > 0.0) return 1.0 / *cached;
  }
  return grid_.node(node).base_speed_mops();
}

void GridService::start_job(std::unique_lock<std::mutex>& lk,
                            const StatePtr& job,
                            std::vector<NodeId> allocation) {
  job->status = JobStatus::Running;
  job->started_at = backend_.now();
  job->nodes = std::move(allocation);
  prepare_params(*job);
  running_.push_back(job);
  peak_running_ = std::max(peak_running_, running_.size());
  update_gauges();
  job->thread = std::thread([this, job] { job_thread_main(job); });
  // First turn: the engine runs until it parks in wait_next (or exits).
  grant_turn(lk, *job);
}

void GridService::run_inline(std::unique_lock<std::mutex>& lk) {
  const StatePtr job = queue_.front();
  queue_.pop_front();
  job->status = JobStatus::Running;
  job->started_at = backend_.now();
  job->nodes = pool_;  // lone tenant: the whole pool, order untouched
  prepare_params(*job);
  running_.push_back(job);
  peak_running_ = std::max(peak_running_, running_.size());
  update_gauges();
  lk.unlock();  // no other actor exists; the engine owns the backend
  try {
    execute(*job, backend_);
  } catch (...) {
    job->error = std::current_exception();
    try {
      std::rethrow_exception(job->error);
    } catch (const std::exception& e) {
      job->error_message = e.what();
    } catch (...) {
      job->error_message = "unknown exception";
    }
  }
  lk.lock();
  running_.erase(std::find(running_.begin(), running_.end(), job));
  finalize(job);
}

void GridService::grant_turn(std::unique_lock<std::mutex>& lk,
                             detail::JobState& job) {
  turn_ = job.seq;
  cv_.notify_all();
  cv_.wait(lk, [&] { return turn_ == 0; });
}

void GridService::reap(std::unique_lock<std::mutex>& lk) {
  (void)lk;
  for (std::size_t i = 0; i < running_.size();) {
    const StatePtr job = running_[i];
    if (!job->thread_done) {
      ++i;
      continue;
    }
    // The thread's final act was releasing the mutex; join is prompt.
    if (job->thread.joinable()) job->thread.join();
    running_.erase(running_.begin() + i);
    finalize(job);
  }
}

void GridService::finalize(const StatePtr& job) {
  job->finished_at = backend_.now();
  const bool ok =
      job->farm_report.has_value() || job->pipeline_report.has_value();
  job->status = ok ? JobStatus::Completed : JobStatus::Failed;
  if (ok)
    ++completed_;
  else
    ++failed_;
  if (params_.use_calibration_cache && job->farm_report.has_value()) {
    // A tenant that evicted a node for persistent degradation (or caught
    // a crash the membership scan hasn't seen yet) has just proven the
    // cached spm wrong — the next tenant must re-probe, not warm-start
    // from the measurement that got the node thrown out.
    for (const auto& ev : job->farm_report->trace.events()) {
      if (ev.kind == gridsim::TraceEventKind::NodeEvicted ||
          ev.kind == gridsim::TraceEventKind::NodeCrashDetected)
        cache_.invalidate(ev.node);
    }
  }
  if (telemetry_ != nullptr) {
    auto& m = telemetry_->metrics;
    m.inc(ok ? met_.completed : met_.failed);
    m.observe(met_.queue_wait_s,
              (job->started_at - job->submitted_at).value);
    if (watchdog_)
      watchdog_->check_queue_wait(backend_.now().value,
                                  m.histogram_snapshot(met_.queue_wait_s));
    if (!ok && telemetry_->flight != nullptr) {
      // Postmortem: a job died with an engine exception — freeze the
      // flight ring to disk while the evidence is still warm.
      telemetry_->flight->note(backend_.now().value, "engine", "job_failed",
                               NodeId::invalid(),
                               static_cast<double>(job->seq));
      telemetry_->flight->dump();
    }
    if (ok) {
      const Seconds finish = job->farm_report
                                 ? job->farm_report->makespan
                                 : job->pipeline_report->makespan;
      m.observe(met_.makespan_s, (finish - job->started_at).value);
    }
    if (job->own_telemetry != nullptr) {
      const std::string prefix = "job." + std::to_string(job->seq) + ".";
      m.import_scoped(prefix, job->own_telemetry->metrics.snapshot());
      telemetry_->spans.import_tree(
          "job", job->started_at.value, job->finished_at.value,
          static_cast<double>(job->seq),
          job->own_telemetry->spans.records());
    }
  }
  update_gauges();
}

void GridService::job_thread_main(StatePtr job) {
  {
    // Do nothing — not even engine construction — before the first turn
    // grant: the admitting thread still owns the backend until then.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return turn_ == job->seq; });
  }
  detail::JobBackend proxy(*this, *job);
  try {
    execute(*job, proxy);
  } catch (...) {
    job->error = std::current_exception();
    try {
      std::rethrow_exception(job->error);
    } catch (const std::exception& e) {
      job->error_message = e.what();
    } catch (...) {
      job->error_message = "unknown exception";
    }
  }
  const std::lock_guard<std::mutex> lk(mu_);
  job->thread_done = true;
  turn_ = 0;
  cv_.notify_all();
}

void GridService::execute(detail::JobState& job, core::Backend& backend) {
  if (auto* farm = std::get_if<FarmJob>(&job.spec)) {
    core::TaskFarm engine(farm->params);
    job.farm_report =
        engine.run_engine(backend, grid_, job.nodes, farm->tasks);
  } else {
    auto& pipe = std::get<PipelineJob>(job.spec);
    core::Pipeline engine(pipe.params);
    job.pipeline_report = engine.run_engine(backend, grid_, job.nodes,
                                            pipe.spec, pipe.item_count);
  }
}

void GridService::prepare_params(detail::JobState& job) {
  core::CalibrationParams* cal = nullptr;
  obs::Telemetry** tel = nullptr;
  if (auto* farm = std::get_if<FarmJob>(&job.spec)) {
    cal = &farm->params.calibration;
    tel = &farm->params.telemetry;
  } else {
    auto& pipe = std::get<PipelineJob>(job.spec);
    cal = &pipe.params.calibration;
    tel = &pipe.params.telemetry;
  }
  if (params_.use_calibration_cache) cal->spm_cache = &cache_;
  if (telemetry_ != nullptr && *tel == nullptr) {
    job.own_telemetry =
        std::make_unique<obs::Telemetry>(telemetry_->detail_enabled());
    // The flight ring is shared, not private: its whole point is one
    // postmortem stream across tenants (the mutex makes that safe).
    job.own_telemetry->flight = telemetry_->flight;
    *tel = job.own_telemetry.get();
  }
  job.telemetry = *tel;
}

GridService::StatePtr GridService::find_running(std::uint64_t seq) const {
  for (const auto& job : running_)
    if (job->seq == seq) return job;
  return nullptr;
}

void GridService::update_gauges() {
  if (telemetry_ == nullptr) return;
  telemetry_->metrics.set(met_.running,
                          static_cast<double>(running_.size()));
  telemetry_->metrics.set(met_.queued, static_cast<double>(queue_.size()));
}

// ------------------------------------------------------------ inspection

std::size_t GridService::jobs_submitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return all_jobs_.size();
}

std::size_t GridService::jobs_completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::size_t GridService::jobs_failed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::size_t GridService::jobs_rejected() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

std::size_t GridService::jobs_running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_.size();
}

std::size_t GridService::jobs_queued() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t GridService::max_concurrent_observed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return peak_running_;
}

std::size_t GridService::min_nodes_reclamps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return min_nodes_reclamps_;
}

std::vector<JobHandle> GridService::jobs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobHandle> handles;
  handles.reserve(all_jobs_.size());
  for (const auto& job : all_jobs_) handles.push_back(JobHandle(job));
  return handles;
}

}  // namespace grasp::svc
