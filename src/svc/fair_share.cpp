#include "svc/fair_share.hpp"

#include <algorithm>
#include <numeric>

namespace grasp::svc {

double fair_target_mops(double total_pool_mops, double running_weight_sum,
                        const ShareRequest& req) {
  const double weight_share =
      req.weight / (running_weight_sum + req.weight);
  return std::min(weight_share, req.max_share) * total_pool_mops;
}

std::vector<NodeId> pick_allocation(
    const std::vector<NodeCapacity>& free_nodes, double total_pool_mops,
    double running_weight_sum, const ShareRequest& req) {
  const std::size_t min_nodes = std::max<std::size_t>(req.min_nodes, 1);
  if (free_nodes.size() < min_nodes) return {};

  double target = fair_target_mops(total_pool_mops, running_weight_sum, req);
  if (req.cap_to_free) {
    // On a busy pool the total-derived target can exceed everything free;
    // capping at max_share of *free* capacity keeps headroom for the next
    // arrival instead of granting the whole remainder to this job.
    const double free_mops = std::accumulate(
        free_nodes.begin(), free_nodes.end(), 0.0,
        [](double sum, const NodeCapacity& n) { return sum + n.mops; });
    target = std::min(target, req.max_share * free_mops);
  }

  // Rank free nodes fastest first (ties by node id for determinism), then
  // take from the top until the granted capacity covers the target and the
  // min_nodes floor is met.
  std::vector<std::size_t> ranked(free_nodes.size());
  std::iota(ranked.begin(), ranked.end(), std::size_t{0});
  std::sort(ranked.begin(), ranked.end(),
            [&](std::size_t a, std::size_t b) {
              if (free_nodes[a].mops != free_nodes[b].mops)
                return free_nodes[a].mops > free_nodes[b].mops;
              return free_nodes[a].node.value < free_nodes[b].node.value;
            });

  std::vector<bool> take(free_nodes.size(), false);
  double granted = 0.0;
  std::size_t taken = 0;
  for (const std::size_t i : ranked) {
    if (taken >= min_nodes && granted >= target) break;
    take[i] = true;
    granted += free_nodes[i].mops;
    ++taken;
  }

  // Emit in the order the free list was given (master pool order).
  std::vector<NodeId> allocation;
  allocation.reserve(taken);
  for (std::size_t i = 0; i < free_nodes.size(); ++i)
    if (take[i]) allocation.push_back(free_nodes[i].node);
  return allocation;
}

}  // namespace grasp::svc
