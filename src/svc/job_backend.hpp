// Per-job Backend proxy: the seam that lets unmodified engines time-share
// one real backend.
//
// Each threaded job runs its engine against a JobBackend instead of the
// service's real backend.  The proxy translates the engine's private op
// tokens into a pool-global space — the job's 1-based sequence number in
// the bits above kJobSeqShift, the engine's token below — so concurrent
// tenants' submissions never collide, and the service can route every
// completion coming off the real backend back to its owner (sequence 0 is
// reserved for the service's own job-arrival timers).
//
// wait_next is where the turn-based handoff lives: when the job's inbox
// is empty but it still has work in flight, the proxy parks the engine
// thread and hands the turn back to the service loop, which pumps the
// real backend and routes completions one at a time (grid_service.cpp
// documents the full protocol).  When the job has nothing in flight and
// no pending timer, wait_next returns nullopt immediately — the exact
// semantics a standalone backend gives a deadlocked engine, so engine
// error paths behave identically under the service.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "core/backend.hpp"
#include "svc/job.hpp"

namespace grasp::svc {

class GridService;

namespace detail {

/// Bit position splitting a global token into (job seq, local token).
inline constexpr unsigned kJobSeqShift = 40;
inline constexpr core::OpToken kLocalTokenMask =
    (core::OpToken{1} << kJobSeqShift) - 1;
/// Job sequence numbers occupy the bits above the shift; anything wider
/// would alias into another job's token space.
inline constexpr std::uint64_t kMaxJobSeq =
    (std::uint64_t{1} << (64 - kJobSeqShift)) - 1;

[[nodiscard]] inline core::OpToken to_global(std::uint64_t seq,
                                             core::OpToken local) {
  // Both halves must fit their fields: masking an overflowing local token
  // (or letting the seq carry into the high bits) would silently collide
  // with another tenant's ops and misroute its completions.
  if (local > kLocalTokenMask) {
    throw std::overflow_error(
        "JobBackend: local op token " + std::to_string(local) +
        " exceeds the 2^40-1 per-job token space");
  }
  if (seq > kMaxJobSeq) {
    throw std::overflow_error(
        "JobBackend: job sequence " + std::to_string(seq) +
        " exceeds the 2^24-1 job-id space");
  }
  return (seq << kJobSeqShift) | local;
}
[[nodiscard]] inline std::uint64_t seq_of(core::OpToken global) {
  return global >> kJobSeqShift;
}
[[nodiscard]] inline core::OpToken to_local(core::OpToken global) {
  return global & kLocalTokenMask;
}

class JobBackend final : public core::Backend {
 public:
  JobBackend(GridService& service, JobState& job)
      : service_(service), job_(job) {}

  [[nodiscard]] Seconds now() const override;
  void submit_compute(core::OpToken token, NodeId node, Mops work,
                      std::function<void()> body = {}) override;
  void submit_transfer(core::OpToken token, NodeId from, NodeId to,
                       Bytes payload) override;
  void submit_timer(core::OpToken token, Seconds delay) override;
  bool cancel_timer(core::OpToken token) override;
  void submit_batch(std::vector<core::OpRequest> requests) override;
  [[nodiscard]] double compute_progress(core::OpToken token) const override;
  [[nodiscard]] std::optional<core::Completion> wait_next() override;
  [[nodiscard]] std::size_t in_flight() const override;

 private:
  GridService& service_;
  JobState& job_;
};

}  // namespace detail
}  // namespace grasp::svc
