// GridService: the resident job-stream scheduler.
//
// Before this layer, one TaskFarm::run owned the backend for its whole
// lifetime — one tenant, one job, then everything torn down.  The service
// inverts that: it owns the node pool for its own lifetime and *admits*
// jobs (farm or pipeline runs) against it.  Jobs arrive via submit() or
// on a scheduled backend timer via submit_at() (open-loop arrival
// streams), queue FIFO, and are started when the weighted
// fair-share-over-mops policy (fair_share.hpp) can cut them an
// allocation from the free part of the pool.  A pool-wide calibration
// cache (calibration_cache.hpp) is threaded through every job's
// CalibrationParams, so one tenant's Algorithm-1 measurements warm the
// next tenant's start.
//
// Execution model — the service has no thread of its own.  The caller's
// thread becomes the scheduler whenever it is inside wait()/wait_all(),
// and each *running* job owns one engine thread driving the unmodified
// run_engine loop against a JobBackend proxy.  Determinism is preserved
// by a strict turn-based handoff: a single token (`turn_`: 0 = the
// service, else a job's seq) says who may run; everyone else is parked
// on the condition variable.  The service pumps the real backend one
// completion at a time, routes it to its owner's inbox and hands the
// turn over; the engine runs until it blocks in wait_next again, handing
// the turn back.  Exactly one actor touches the backend at any moment
// and every handoff is an acquire/release pair on the one mutex, so runs
// are deterministic and TSan-clean.
//
// Inline fast path: with exactly one live job, no scheduled arrivals and
// force_threaded off, the service skips threads entirely and runs the
// engine inline on the caller's thread against the real backend — zero
// overhead, observably identical to calling run_engine directly.  This
// is what makes TaskFarm::run / Pipeline::run thin wrappers over a
// private single-tenant service without perturbing a single test.
//
// Thread-safety: all public methods must be called from one client
// thread (the engine threads are an implementation detail).  JobHandle
// accessors are exact once the handle is terminal and the service has
// quiesced.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/backend.hpp"
#include "gridsim/grid.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "svc/calibration_cache.hpp"
#include "svc/job.hpp"
#include "svc/job_backend.hpp"

namespace grasp::svc {

class GridService {
 public:
  struct Params {
    /// Cap on simultaneously running jobs; 0 = bounded by the pool only.
    std::size_t max_concurrent_jobs = 0;
    /// Admission control: a submit that would grow the wait queue past
    /// this bound is Rejected instead of queued (scheduled arrivals are
    /// checked when their timer fires).  Default: never reject.
    std::size_t max_queued_jobs = static_cast<std::size_t>(-1);
    /// Thread the pool-wide calibration cache through every job.
    bool use_calibration_cache = true;
    /// Freshness horizon for cached spm entries.
    Seconds calibration_max_age = Seconds{600.0};
    /// Cap every admission grant at max_share of the *free* capacity as
    /// well as of the total (fair_share.hpp documents the busy-pool
    /// over-grab this guards against).  Off by default: the recorded
    /// bench baselines rely on the work-conserving grab-the-remainder
    /// policy.
    bool cap_share_to_free = false;
    /// Shared observability sink (non-owning; may be null).  Service
    /// counters live here, and each retired job's private telemetry is
    /// imported under a "job.<seq>." metric prefix and a "job" span root
    /// (read back per-job with obs::filter_snapshot).
    obs::Telemetry* telemetry = nullptr;
    /// Service-level SLO bounds (requires `telemetry`).  The service's own
    /// watchdog checks queue-wait p99 against `queue_wait_p99_s` every time
    /// a job retires; per-tenant engine rules go through JobOptions::slos
    /// instead.  All-zero disables it.
    obs::SloRules slos;
    /// Disable the single-job inline fast path (tests: forces the
    /// threaded protocol even for one tenant).
    bool force_threaded = false;
  };

  /// The service schedules over `pool` (a subset of `grid`'s nodes) and
  /// resolves all costs through `backend`.  Both must outlive it.
  GridService(core::Backend& backend, const gridsim::Grid& grid,
              std::vector<NodeId> pool);
  GridService(core::Backend& backend, const gridsim::Grid& grid,
              std::vector<NodeId> pool, Params params);
  GridService(const GridService&) = delete;
  GridService& operator=(const GridService&) = delete;
  /// Cancels scheduled arrivals, drops queued jobs, and shuts down any
  /// running engines (they observe a premature end-of-stream and fail).
  ~GridService();

  // ---------------------------------------------------------- submission
  JobHandle submit(FarmJob job, JobOptions options = {});
  JobHandle submit(PipelineJob job, JobOptions options = {});
  /// Schedule a submission for absolute backend time `when` (clamped to
  /// now): the job materialises in the queue when the backend clock gets
  /// there, which is how open-loop arrival processes enter the service.
  JobHandle submit_at(Seconds when, FarmJob job, JobOptions options = {});
  JobHandle submit_at(Seconds when, PipelineJob job, JobOptions options = {});

  // ------------------------------------------------------------- waiting
  /// Drive the service until `handle` is terminal.  Rethrows the engine's
  /// exception when the job Failed (so the single-job wrapper surfaces
  /// exactly what run_engine would have thrown).
  void wait(const JobHandle& handle);
  /// Drive the service until every submitted and scheduled job is
  /// terminal.  Does not rethrow; inspect handles for failures.
  void wait_all();

  // ----------------------------------------------------------- inspection
  [[nodiscard]] const CalibrationCache& calibration_cache() const {
    return cache_;
  }
  [[nodiscard]] CalibrationCache& calibration_cache() { return cache_; }
  [[nodiscard]] const std::vector<NodeId>& pool() const { return pool_; }

  [[nodiscard]] std::size_t jobs_submitted() const;
  [[nodiscard]] std::size_t jobs_completed() const;
  [[nodiscard]] std::size_t jobs_failed() const;
  [[nodiscard]] std::size_t jobs_rejected() const;
  [[nodiscard]] std::size_t jobs_running() const;
  [[nodiscard]] std::size_t jobs_queued() const;
  /// Peak number of simultaneously running jobs over the service's life —
  /// the multi-tenancy witness the bench smoke gate asserts on.
  [[nodiscard]] std::size_t max_concurrent_observed() const;
  /// Times a queued head job's min_nodes was re-clamped because churn
  /// shrank live membership below it (head-of-line anti-starvation).
  [[nodiscard]] std::size_t min_nodes_reclamps() const;
  /// Every handle ever produced, in submission order.
  [[nodiscard]] std::vector<JobHandle> jobs() const;

 private:
  friend class detail::JobBackend;
  using StatePtr = std::shared_ptr<detail::JobState>;

  JobHandle submit_impl(std::variant<FarmJob, PipelineJob> spec,
                        JobOptions options, std::optional<Seconds> when);

  /// Run `job`'s engine against `backend` (dispatch on the spec variant).
  void execute(detail::JobState& job, core::Backend& backend);
  /// Inject the calibration cache and a per-job telemetry sink into the
  /// job's engine params (in place, pre-run).
  void prepare_params(detail::JobState& job);

  // Scheduler core; every method below requires mu_ held via `lk` and the
  // service turn (turn_ == 0).
  void pump_until(std::unique_lock<std::mutex>& lk,
                  const std::function<bool()>& done);
  bool pump_one(std::unique_lock<std::mutex>& lk);
  void try_admit(std::unique_lock<std::mutex>& lk);
  void start_job(std::unique_lock<std::mutex>& lk, const StatePtr& job,
                 std::vector<NodeId> allocation);
  void run_inline(std::unique_lock<std::mutex>& lk);
  void reap(std::unique_lock<std::mutex>& lk);
  void finalize(const StatePtr& job);
  void grant_turn(std::unique_lock<std::mutex>& lk, detail::JobState& job);
  [[nodiscard]] bool inline_eligible() const;
  [[nodiscard]] StatePtr find_running(std::uint64_t seq) const;
  [[nodiscard]] double capacity_mops(NodeId node) const;
  /// Drop cached spm for nodes with a churn Crash/Leave in
  /// (churn_scan_, now]; advances the watermark.  No-op without a churn
  /// timeline or with the cache disabled.
  void invalidate_departed(Seconds now);
  void update_gauges();

  void job_thread_main(StatePtr job);

  core::Backend& backend_;
  const gridsim::Grid& grid_;
  std::vector<NodeId> pool_;
  Params params_;
  CalibrationCache cache_;
  obs::Telemetry* telemetry_ = nullptr;

  struct SvcMetrics {
    obs::CounterHandle submitted, completed, failed, rejected, reclamped;
    obs::GaugeHandle running, queued;
    obs::HistogramHandle queue_wait_s, makespan_s;
  } met_;
  /// Service-level SLO watchdog (queue-wait p99 at job retirement); engaged
  /// only when params.slos has a bound set and a telemetry sink exists.
  std::optional<obs::Watchdog> watchdog_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Whose move it is: 0 = the service loop, else a job's seq.
  std::uint64_t turn_ = 0;

  std::uint64_t next_seq_ = 1;
  std::vector<StatePtr> all_jobs_;
  std::deque<StatePtr> queue_;
  std::vector<StatePtr> running_;
  std::unordered_map<core::OpToken, StatePtr> pending_arrivals_;
  core::OpToken next_arrival_token_ = 1;

  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t rejected_ = 0;
  std::size_t peak_running_ = 0;
  std::size_t min_nodes_reclamps_ = 0;
  /// High-water mark of the churn-event scan feeding cache invalidation.
  Seconds churn_scan_{0.0};
};

}  // namespace grasp::svc
