#include "svc/job_backend.hpp"

#include <algorithm>

#include "svc/grid_service.hpp"

namespace grasp::svc::detail {

// Every method serialises on the service mutex.  That is cheap here, not
// contended: the turn protocol guarantees the owning engine thread is the
// only live actor while these run (the service loop and all other job
// threads are parked on the condition variable), so the lock is taken
// uncontended — it exists for the acquire/release edges that make each
// turn handoff a happens-before, which is what keeps the whole service
// TSan-clean and deterministic.

Seconds JobBackend::now() const {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  return service_.backend_.now();
}

void JobBackend::submit_compute(core::OpToken token, NodeId node, Mops work,
                                std::function<void()> body) {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  ++job_.outstanding;
  service_.backend_.submit_compute(to_global(job_.seq, token), node, work,
                                   std::move(body));
}

void JobBackend::submit_transfer(core::OpToken token, NodeId from, NodeId to,
                                 Bytes payload) {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  ++job_.outstanding;
  service_.backend_.submit_transfer(to_global(job_.seq, token), from, to,
                                    payload);
}

void JobBackend::submit_timer(core::OpToken token, Seconds delay) {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  ++job_.pending_timers;
  service_.backend_.submit_timer(to_global(job_.seq, token), delay);
}

bool JobBackend::cancel_timer(core::OpToken token) {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  // The firing may already have been routed to the inbox; purging it
  // there preserves the contract that a cancelled timer's completion is
  // never delivered, fired or not.
  const auto routed = std::find_if(
      job_.inbox.begin(), job_.inbox.end(), [&](const core::Completion& c) {
        return c.is_timer && c.token == token;
      });
  if (routed != job_.inbox.end()) {
    job_.inbox.erase(routed);
    --job_.pending_timers;
    return true;
  }
  if (service_.backend_.cancel_timer(to_global(job_.seq, token))) {
    --job_.pending_timers;
    return true;
  }
  return false;
}

void JobBackend::submit_batch(std::vector<core::OpRequest> requests) {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  for (core::OpRequest& r : requests) {
    if (r.kind == core::OpRequest::Kind::Timer)
      ++job_.pending_timers;
    else
      ++job_.outstanding;
    r.token = to_global(job_.seq, r.token);
  }
  service_.backend_.submit_batch(std::move(requests));
}

double JobBackend::compute_progress(core::OpToken token) const {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  return service_.backend_.compute_progress(to_global(job_.seq, token));
}

std::optional<core::Completion> JobBackend::wait_next() {
  std::unique_lock<std::mutex> lock(service_.mu_);
  for (;;) {
    if (job_.deliver_nullopt) return std::nullopt;  // service shutdown
    if (!job_.inbox.empty()) {
      const core::Completion c = job_.inbox.front();
      job_.inbox.pop_front();
      if (c.is_timer)
        --job_.pending_timers;
      else
        --job_.outstanding;
      return c;
    }
    // Nothing in flight and no pending timer: a standalone backend would
    // report end-of-stream here, so the proxy must too (this is the
    // engine deadlock-detection path).
    if (job_.outstanding == 0 && job_.pending_timers == 0)
      return std::nullopt;
    // Park: hand the turn to the service loop, wake when it routes a
    // completion to this job and grants the turn back.
    job_.blocked = true;
    service_.turn_ = 0;
    service_.cv_.notify_all();
    service_.cv_.wait(lock, [&] { return service_.turn_ == job_.seq; });
    job_.blocked = false;
  }
}

std::size_t JobBackend::in_flight() const {
  const std::lock_guard<std::mutex> lock(service_.mu_);
  // `outstanding` counts submitted-but-undelivered compute/transfer ops —
  // including ones already routed to the inbox — which is exactly the
  // standalone in_flight contract the engines' drain invariants assume.
  return job_.outstanding;
}

}  // namespace grasp::svc::detail
