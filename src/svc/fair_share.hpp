// Weighted fair share over mops: the service's allocation policy.
//
// Capacity, not node count, is the currency — a 400 Mops/s node is worth
// eight 50 Mops/s nodes — so a job's share is expressed as a mops target:
//
//   target = min(weight / (running_weights + weight), max_share) * total
//
// and the allocator grants free nodes, fastest first, until the granted
// capacity reaches the target (or the free set runs out: the policy is
// work-conserving below the max_share cap).  Node capacities come from
// the calibration cache when fresh (1 / spm) and the grid's base speed
// otherwise, so one tenant's measurements sharpen the next tenant's cut.
//
// Busy-pool caveat: the target is a fraction of the *total* pool, so when
// most capacity is already held the target can exceed everything that is
// free, and the work-conserving default grants the entire remainder —
// a heavy job admitted late leaves nothing for the next arrival until
// someone finishes.  Set `cap_to_free` to additionally cap the grant at
// max_share of the *free* capacity, preserving admission headroom on a
// busy pool at the cost of work conservation.  The default stays
// work-conserving because established streams (and their recorded bench
// baselines) rely on the grab-the-remainder behaviour.
//
// The returned allocation preserves the order the free nodes were given
// in (the service's master pool order): engines are sensitive to pool
// order — the farmer sits on pool.front(), stages map in pool order — so
// the policy selects nodes but never reorders them.
#pragma once

#include <cstddef>
#include <vector>

#include "support/ids.hpp"

namespace grasp::svc {

/// One allocatable node with its capacity estimate in Mops/s.
struct NodeCapacity {
  NodeId node;
  double mops = 0.0;
};

/// The admission request as the policy sees it.
struct ShareRequest {
  double weight = 1.0;
  std::size_t min_nodes = 1;
  double max_share = 1.0;
  /// Also cap the grant at max_share of the free capacity (see the
  /// busy-pool caveat above).  min_nodes still floors the grant.
  bool cap_to_free = false;
};

/// The mops target the policy aims to grant `req` when jobs with summed
/// weight `running_weight_sum` already hold allocations.
[[nodiscard]] double fair_target_mops(double total_pool_mops,
                                      double running_weight_sum,
                                      const ShareRequest& req);

/// Pick an allocation for `req` out of `free_nodes` (the master pool
/// minus nodes held by running jobs, in master-pool order).  Returns the
/// chosen nodes in that same order, or an empty vector when the job
/// cannot start yet (fewer than min_nodes free nodes).
[[nodiscard]] std::vector<NodeId> pick_allocation(
    const std::vector<NodeCapacity>& free_nodes, double total_pool_mops,
    double running_weight_sum, const ShareRequest& req);

}  // namespace grasp::svc
