#include "svc/calibration_cache.hpp"

namespace grasp::svc {

std::optional<double> CalibrationCache::lookup(NodeId node,
                                               Seconds now) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(node);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const double age = (now - it->second.at).value;
  if (age > params_.max_age.value) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.spm;
}

void CalibrationCache::store(NodeId node, double spm, Seconds now) {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_[node] = Entry{spm, now};
  ++stores_;
}

bool CalibrationCache::invalidate(NodeId node) {
  const std::lock_guard<std::mutex> lock(mu_);
  const bool removed = entries_.erase(node) > 0;
  if (removed) ++invalidations_;
  return removed;
}

std::size_t CalibrationCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t CalibrationCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t CalibrationCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t CalibrationCache::stores() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stores_;
}

std::size_t CalibrationCache::invalidations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}

void CalibrationCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace grasp::svc
