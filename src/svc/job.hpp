// Job model for the GridService layer.
//
// A job is one complete skeleton run — a task farm over a TaskSet or a
// pipeline over a PipelineSpec — bundled with the engine parameters it
// should run under.  The service admits jobs against a shared node pool,
// carves each one an allocation (fair_share.hpp), and drives the engine
// to completion; the JobHandle returned by submit() is the caller's view
// of that lifecycle.
//
// detail::JobState is the service-side record.  Mutation discipline: the
// service thread owns lifecycle fields under the service mutex; the
// threaded-mode plumbing block is shared between the job's engine thread
// and the service loop, always under that same mutex (see GridService for
// the turn-based handoff protocol that makes this deterministic).
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/backend.hpp"
#include "core/pipeline.hpp"
#include "core/task_farm.hpp"
#include "obs/telemetry.hpp"
#include "resil/failure_detector.hpp"
#include "support/ids.hpp"
#include "workloads/task.hpp"

namespace grasp::svc {

/// One task-farm run: engine parameters plus the work itself.
struct FarmJob {
  core::FarmParams params;
  workloads::TaskSet tasks;
};

/// One pipeline run.
struct PipelineJob {
  core::PipelineParams params;
  workloads::PipelineSpec spec;
  std::size_t item_count = 0;
};

enum class JobStatus {
  Queued,     ///< admitted to the service, waiting for an allocation
  Running,    ///< engine live on its allocation
  Completed,  ///< engine returned a report
  Failed,     ///< engine threw; see JobHandle::error_message / rethrow
  Rejected,   ///< refused at submit (queue bound); never entered the queue
};

[[nodiscard]] const char* to_string(JobStatus status);

/// Per-job scheduling knobs, fixed at submit time.
struct JobOptions {
  /// Display name; empty becomes "job-<id>".
  std::string name;
  /// Weight in the fair-share-over-mops policy (> 0).
  double weight = 1.0;
  /// Allocation floor: the job stays queued until this many pool nodes are
  /// free (clamped to the pool size).
  std::size_t min_nodes = 1;
  /// Cap on the fraction of total pool capacity (in mops) this job may be
  /// granted, in (0, 1].  1.0 is work-conserving: a lone job takes every
  /// free node.  Setting it below 1 reserves headroom so a later arrival
  /// can run alongside instead of queueing behind a pool hog.
  double max_share = 1.0;

  // ---- per-job detection & dispatch policy (overrides the engine params
  // ---- bundled with the job spec; nullopt leaves them untouched) ----
  /// Failure-detection mode for this tenant's engine.  Farm jobs: sets
  /// resilience.detector.mode.  Pipeline jobs: Accrual additionally turns
  /// on adaptive down-stage patience (the pipeline's analog of per-node
  /// inter-arrival statistics).  The timeout + period hard cap is engine
  /// policy and is never affected by this switch.
  std::optional<resil::DetectionMode> detection_mode;
  /// Waste-aware dispatch economics for this tenant.  Farm jobs: sets
  /// params.econ.enabled (quantile cost model, reissue budget, eviction
  /// break-even, exposure cap).  Ignored for pipeline jobs, which have no
  /// speculative-duplication economy.
  std::optional<bool> farm_econ;
  /// Per-tenant SLO bounds (obs/watchdog.hpp), installed into the engine
  /// params so breaches are evaluated on the engine's own liveness ticks.
  /// Breach counters land under the job's "job.<seq>." metric prefix when
  /// the service imports the retired job's telemetry.
  std::optional<obs::SloRules> slos;
};

namespace detail {

struct JobState {
  // ---- identity / policy (immutable after submit) ----
  std::uint64_t seq = 0;  ///< 1-based; 0 is reserved for service timers
  std::string name;
  double weight = 1.0;
  std::size_t min_nodes = 1;
  double max_share = 1.0;
  std::variant<FarmJob, PipelineJob> spec;

  // ---- lifecycle (service under its mutex; stable once terminal) ----
  JobStatus status = JobStatus::Queued;
  Seconds submitted_at{0.0};
  Seconds started_at{0.0};
  Seconds finished_at{0.0};
  std::vector<NodeId> nodes;  ///< allocation (kept after the job retires)
  std::optional<core::FarmReport> farm_report;
  std::optional<core::PipelineReport> pipeline_report;
  std::exception_ptr error;
  std::string error_message;

  // ---- telemetry ----
  // Where the engine records.  Points at the job's own params.telemetry
  // when the caller supplied one; otherwise, in threaded mode, at a
  // private per-job instance whose contents the service imports into its
  // shared registry when the job retires.
  obs::Telemetry* telemetry = nullptr;
  std::unique_ptr<obs::Telemetry> own_telemetry;

  // ---- threaded-mode plumbing (service mutex; see grid_service.cpp) ----
  std::thread thread;
  bool thread_done = false;      ///< engine returned or threw
  bool blocked = false;          ///< parked inside JobBackend::wait_next
  bool deliver_nullopt = false;  ///< next wait_next resolves to nullopt
  std::deque<core::Completion> inbox;  ///< routed, undelivered completions
  std::size_t outstanding = 0;     ///< non-timer ops submitted, undelivered
  std::size_t pending_timers = 0;  ///< armed timers, unfired/uncancelled
};

}  // namespace detail

/// Caller-side view of a submitted job.  Cheap to copy (shared state).
///
/// Accessors are exact once the job is terminal and the service has
/// quiesced (wait()/wait_all() returned); they are not synchronized
/// against a live service loop, so mid-run reads from another thread are
/// advisory only.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return state_->seq; }
  [[nodiscard]] const std::string& name() const { return state_->name; }
  [[nodiscard]] JobStatus status() const { return state_->status; }
  [[nodiscard]] Seconds submitted_at() const { return state_->submitted_at; }
  [[nodiscard]] Seconds started_at() const { return state_->started_at; }
  [[nodiscard]] Seconds finished_at() const { return state_->finished_at; }
  /// Nodes the job ran on (empty until admitted).
  [[nodiscard]] const std::vector<NodeId>& nodes() const {
    return state_->nodes;
  }

  [[nodiscard]] bool has_farm_report() const {
    return state_->farm_report.has_value();
  }
  [[nodiscard]] bool has_pipeline_report() const {
    return state_->pipeline_report.has_value();
  }
  /// Throws std::logic_error when the job is not a completed farm job.
  [[nodiscard]] const core::FarmReport& farm_report() const;
  [[nodiscard]] const core::PipelineReport& pipeline_report() const;

  /// Queueing delay: admission minus submission.
  [[nodiscard]] double queue_wait_s() const {
    return (state_->started_at - state_->submitted_at).value;
  }
  /// Per-tenant makespan: last completion minus admission.  (Engine
  /// reports carry absolute finish times; this rebases to the job's own
  /// start.)  Zero unless Completed.
  [[nodiscard]] double makespan_s() const;

  /// What the engine threw, as text ("" unless Failed).
  [[nodiscard]] const std::string& error_message() const {
    return state_->error_message;
  }
  /// Rethrow the captured engine exception; no-op unless Failed.
  void rethrow() const;

 private:
  friend class GridService;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

}  // namespace grasp::svc
