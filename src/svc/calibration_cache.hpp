// Pool-wide calibration cache: one tenant's measurements warm another's
// start.
//
// Algorithm 1 probes every pool node before dispatch; in a job stream
// most of those probes re-measure nodes another tenant sampled seconds
// ago.  The service threads this cache through every job's
// CalibrationParams (core::SpmCache seam): the calibrator consults it
// before probing — a fresh entry seeds the node's spm statistic directly
// and the probe chain for that node is skipped — and stores every spm it
// does measure back, stamped with the backend clock.  Recalibrations
// always re-probe (warm_start is cleared after a job's initial
// calibration) but still publish their fresh measurements here.
//
// Entries expire after `max_age`: grid load drifts, so a stale spm is
// worse than a probe.  Thread-safe — concurrent tenants calibrate from
// their own job threads.
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/calibration.hpp"
#include "support/ids.hpp"

namespace grasp::svc {

class CalibrationCache final : public core::SpmCache {
 public:
  struct Params {
    /// Entries older than this (backend seconds) are treated as absent.
    Seconds max_age = Seconds{600.0};
  };

  CalibrationCache() : CalibrationCache(Params{}) {}
  explicit CalibrationCache(Params params) : params_(params) {}

  [[nodiscard]] std::optional<double> lookup(NodeId node,
                                             Seconds now) const override;
  void store(NodeId node, double spm, Seconds now) override;

  /// Drop a node's entry (no-op when absent).  The service calls this on
  /// membership Crash/Leave and degradation evictions: a crashed node's
  /// spm is meaningless on rejoin, and a degraded node's cached speed is
  /// exactly the measurement that got it evicted — warm-starting the next
  /// tenant from either ranks the node by a machine that no longer
  /// exists.  Returns true when an entry was actually removed.
  bool invalidate(NodeId node);

  /// Live entries (age is evaluated lazily at lookup, so this counts
  /// stored entries including ones that would now read as stale).
  [[nodiscard]] std::size_t size() const;
  /// Lookups served by a fresh entry / total lookups that found nothing
  /// usable / stores.
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t stores() const;
  /// Entries removed via invalidate (counts removals, not no-op calls).
  [[nodiscard]] std::size_t invalidations() const;
  void clear();

 private:
  struct Entry {
    double spm = 0.0;
    Seconds at{0.0};
  };

  Params params_;
  mutable std::mutex mu_;
  std::unordered_map<NodeId, Entry> entries_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
  std::size_t stores_ = 0;
  std::size_t invalidations_ = 0;
};

}  // namespace grasp::svc
