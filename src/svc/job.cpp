#include "svc/job.hpp"

#include <stdexcept>

namespace grasp::svc {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::Queued:
      return "queued";
    case JobStatus::Running:
      return "running";
    case JobStatus::Completed:
      return "completed";
    case JobStatus::Failed:
      return "failed";
    case JobStatus::Rejected:
      return "rejected";
  }
  return "?";
}

const core::FarmReport& JobHandle::farm_report() const {
  if (!state_->farm_report)
    throw std::logic_error("JobHandle: no farm report (job \"" +
                           state_->name + "\" is " +
                           to_string(state_->status) + ")");
  return *state_->farm_report;
}

const core::PipelineReport& JobHandle::pipeline_report() const {
  if (!state_->pipeline_report)
    throw std::logic_error("JobHandle: no pipeline report (job \"" +
                           state_->name + "\" is " +
                           to_string(state_->status) + ")");
  return *state_->pipeline_report;
}

double JobHandle::makespan_s() const {
  if (state_->status != JobStatus::Completed) return 0.0;
  const Seconds finish = state_->farm_report
                             ? state_->farm_report->makespan
                             : state_->pipeline_report->makespan;
  return (finish - state_->started_at).value;
}

void JobHandle::rethrow() const {
  if (state_->error) std::rethrow_exception(state_->error);
}

}  // namespace grasp::svc
