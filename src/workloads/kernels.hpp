// Real compute kernels.
//
// Two uses: (1) deriving authentic cost structure for the simulated task
// sets (Mandelbrot escape iterations), and (2) giving the threaded backend
// and the examples genuine CPU work to run — `burn_mops` spins a calibrated
// arithmetic loop, `smith_waterman_score` is the actual DP.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace grasp::workloads {

/// Total Mandelbrot escape-time iterations over a `resolution x resolution`
/// sample of the tile with origin (x0, y0) and extent (w, h).
[[nodiscard]] std::uint64_t mandelbrot_tile_iterations(
    double x0, double y0, double w, double h, std::size_t resolution,
    std::size_t max_iterations);

/// Smith–Waterman local-alignment score with linear gap penalty
/// (match +2, mismatch -1, gap -2).  O(|a| * |b|) time, O(min) space.
[[nodiscard]] int smith_waterman_score(std::string_view a,
                                       std::string_view b);

/// Deterministic pseudo-DNA sequence of length n (alphabet ACGT).
[[nodiscard]] std::string random_dna(std::size_t n, std::uint64_t seed);

/// Burn roughly `mops` mega-operations of CPU (floating-point multiply-add
/// loop).  Returns a value derived from the computation so the loop cannot
/// be optimised away.  Used by the threaded backend to realise simulated
/// task costs as wall-clock work.
double burn_mops(double mops);

/// Composite Simpson integration of f(x) = sin(x)*exp(-x/4) over [a, b]
/// with n panels (n forced even).  The quadrature example's payload.
[[nodiscard]] double simpson_integral(double a, double b, std::size_t n);

}  // namespace grasp::workloads
