#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"

namespace grasp::workloads {

const char* to_string(CostDistribution d) {
  switch (d) {
    case CostDistribution::Constant: return "constant";
    case CostDistribution::Uniform: return "uniform";
    case CostDistribution::Normal: return "normal";
    case CostDistribution::LogNormal: return "lognormal";
    case CostDistribution::Bimodal: return "bimodal";
    case CostDistribution::Pareto: return "pareto";
  }
  return "unknown";
}

CostDistribution cost_distribution_from_string(const std::string& name) {
  if (name == "constant") return CostDistribution::Constant;
  if (name == "uniform") return CostDistribution::Uniform;
  if (name == "normal") return CostDistribution::Normal;
  if (name == "lognormal") return CostDistribution::LogNormal;
  if (name == "bimodal") return CostDistribution::Bimodal;
  if (name == "pareto") return CostDistribution::Pareto;
  throw std::invalid_argument("unknown cost distribution: " + name);
}

namespace {

double draw_cost(const TaskSetParams& p, Rng& rng) {
  const double mean = p.mean_mops;
  switch (p.distribution) {
    case CostDistribution::Constant:
      return mean;
    case CostDistribution::Uniform:
      return rng.uniform(0.5 * mean, 1.5 * mean);
    case CostDistribution::Normal:
      return std::max(mean / 10.0, rng.normal(mean, p.cv * mean));
    case CostDistribution::LogNormal: {
      // Match the requested mean and cv:  sigma^2 = ln(1+cv^2),
      // mu = ln(mean) - sigma^2/2.
      const double sigma2 = std::log(1.0 + p.cv * p.cv);
      const double mu = std::log(mean) - sigma2 / 2.0;
      return rng.lognormal(mu, std::sqrt(sigma2));
    }
    case CostDistribution::Bimodal:
      // 90% light at mean/2, 10% heavy at 5.5x mean -> overall mean ~= mean.
      return rng.bernoulli(0.1) ? 5.5 * mean : 0.5 * mean;
    case CostDistribution::Pareto: {
      // E[X] = alpha*xm/(alpha-1); choose alpha=2.2 and solve for xm.
      const double alpha = 2.2;
      const double xm = mean * (alpha - 1.0) / alpha;
      return rng.pareto(xm, alpha);
    }
  }
  return mean;
}

}  // namespace

TaskSet make_task_set(const TaskSetParams& params) {
  if (params.count == 0)
    throw std::invalid_argument("make_task_set: count must be positive");
  if (params.mean_mops <= 0.0)
    throw std::invalid_argument("make_task_set: mean_mops must be positive");
  Rng rng(params.seed);
  TaskSet set;
  set.name = std::string(to_string(params.distribution)) + "-" +
             std::to_string(params.count);
  set.tasks.reserve(params.count);
  for (std::size_t i = 0; i < params.count; ++i) {
    TaskSpec t;
    t.id = TaskId{i};
    t.work = Mops{draw_cost(params, rng)};
    t.input = Bytes{params.input_bytes};
    t.output = Bytes{params.output_bytes};
    set.tasks.push_back(t);
  }
  return set;
}

std::vector<JobArrival> make_job_arrivals(const JobArrivalParams& params) {
  if (params.base_rate_per_s <= 0.0)
    throw std::invalid_argument(
        "make_job_arrivals: base_rate_per_s must be positive");
  if (params.diurnal_amplitude < 0.0 || params.diurnal_amplitude >= 1.0)
    throw std::invalid_argument(
        "make_job_arrivals: diurnal_amplitude must be in [0, 1)");
  if (params.diurnal_period.value <= 0.0)
    throw std::invalid_argument(
        "make_job_arrivals: diurnal_period must be positive");
  double weight_total = 0.0;
  for (const double w : params.kind_weights) {
    if (w < 0.0)
      throw std::invalid_argument(
          "make_job_arrivals: kind weights must be non-negative");
    weight_total += w;
  }

  const auto rate_at = [&](double t) {
    const double angle =
        2.0 * std::numbers::pi *
        (t / params.diurnal_period.value + params.diurnal_phase);
    return params.base_rate_per_s *
           (1.0 + params.diurnal_amplitude * std::sin(angle));
  };
  const double peak_rate =
      params.base_rate_per_s * (1.0 + params.diurnal_amplitude);

  Rng rng(params.seed);
  std::vector<JobArrival> arrivals;
  double t = 0.0;
  for (;;) {
    // Thinning: candidates at the peak rate, accepted with probability
    // rate(t) / peak — what survives is the non-homogeneous process.
    t += rng.exponential(peak_rate);
    if (t >= params.horizon.value) break;
    if (rng.uniform() * peak_rate > rate_at(t)) continue;
    JobArrival arrival;
    arrival.at = Seconds{t};
    if (weight_total > 0.0) {
      double pick = rng.uniform() * weight_total;
      for (std::size_t k = 0; k < params.kind_weights.size(); ++k) {
        pick -= params.kind_weights[k];
        if (pick <= 0.0) {
          arrival.kind = k;
          break;
        }
        arrival.kind = k;  // numeric tail: last non-zero-weight kind wins
      }
    }
    arrival.seed = rng.next();
    arrivals.push_back(arrival);
  }
  return arrivals;
}

}  // namespace grasp::workloads
