#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"

namespace grasp::workloads {

const char* to_string(CostDistribution d) {
  switch (d) {
    case CostDistribution::Constant: return "constant";
    case CostDistribution::Uniform: return "uniform";
    case CostDistribution::Normal: return "normal";
    case CostDistribution::LogNormal: return "lognormal";
    case CostDistribution::Bimodal: return "bimodal";
    case CostDistribution::Pareto: return "pareto";
  }
  return "unknown";
}

CostDistribution cost_distribution_from_string(const std::string& name) {
  if (name == "constant") return CostDistribution::Constant;
  if (name == "uniform") return CostDistribution::Uniform;
  if (name == "normal") return CostDistribution::Normal;
  if (name == "lognormal") return CostDistribution::LogNormal;
  if (name == "bimodal") return CostDistribution::Bimodal;
  if (name == "pareto") return CostDistribution::Pareto;
  throw std::invalid_argument("unknown cost distribution: " + name);
}

namespace {

double draw_cost(const TaskSetParams& p, Rng& rng) {
  const double mean = p.mean_mops;
  switch (p.distribution) {
    case CostDistribution::Constant:
      return mean;
    case CostDistribution::Uniform:
      return rng.uniform(0.5 * mean, 1.5 * mean);
    case CostDistribution::Normal:
      return std::max(mean / 10.0, rng.normal(mean, p.cv * mean));
    case CostDistribution::LogNormal: {
      // Match the requested mean and cv:  sigma^2 = ln(1+cv^2),
      // mu = ln(mean) - sigma^2/2.
      const double sigma2 = std::log(1.0 + p.cv * p.cv);
      const double mu = std::log(mean) - sigma2 / 2.0;
      return rng.lognormal(mu, std::sqrt(sigma2));
    }
    case CostDistribution::Bimodal:
      // 90% light at mean/2, 10% heavy at 5.5x mean -> overall mean ~= mean.
      return rng.bernoulli(0.1) ? 5.5 * mean : 0.5 * mean;
    case CostDistribution::Pareto: {
      // E[X] = alpha*xm/(alpha-1); choose alpha=2.2 and solve for xm.
      const double alpha = 2.2;
      const double xm = mean * (alpha - 1.0) / alpha;
      return rng.pareto(xm, alpha);
    }
  }
  return mean;
}

}  // namespace

TaskSet make_task_set(const TaskSetParams& params) {
  if (params.count == 0)
    throw std::invalid_argument("make_task_set: count must be positive");
  if (params.mean_mops <= 0.0)
    throw std::invalid_argument("make_task_set: mean_mops must be positive");
  Rng rng(params.seed);
  TaskSet set;
  set.name = std::string(to_string(params.distribution)) + "-" +
             std::to_string(params.count);
  set.tasks.reserve(params.count);
  for (std::size_t i = 0; i < params.count; ++i) {
    TaskSpec t;
    t.id = TaskId{i};
    t.work = Mops{draw_cost(params, rng)};
    t.input = Bytes{params.input_bytes};
    t.output = Bytes{params.output_bytes};
    set.tasks.push_back(t);
  }
  return set;
}

}  // namespace grasp::workloads
