// Shaped application workloads: the scenarios the paper's introduction
// motivates (scientific parameter sweeps, sequence comparison, staged media
// processing, numerical quadrature), expressed as task sets / pipelines.
//
// Costs are derived from the applications' real complexity structure
// (escape-time iteration counts, m*n dynamic-programming cells, per-pixel
// filter budgets) so the irregularity the skeletons face is the
// application's own, not an arbitrary distribution.
#pragma once

#include <cstdint>

#include "workloads/task.hpp"

namespace grasp::workloads {

/// Mandelbrot-style parameter sweep: the complex plane window
/// [-2,1]x[-1.25,1.25] is split into `tiles_x * tiles_y` tiles, one task per
/// tile.  Each tile's cost is its *actual* total escape-time iteration
/// count (computed here at `probe_resolution^2` sample points), scaled by
/// `mops_per_kilo_iteration`.  Border tiles near the set are orders of
/// magnitude heavier — the classic irregular sweep.
struct MandelbrotSweepParams {
  std::size_t tiles_x = 16;
  std::size_t tiles_y = 16;
  std::size_t probe_resolution = 16;
  std::size_t max_iterations = 512;
  double mops_per_kilo_iteration = 1.0;
  double tile_input_bytes = 64;       ///< tile coordinates
  double tile_output_bytes = 16e3;    ///< rendered tile
};
[[nodiscard]] TaskSet make_mandelbrot_sweep(const MandelbrotSweepParams& p);

/// Pairwise sequence-alignment batch (Smith–Waterman shaped): query lengths
/// lognormal around `mean_query_len`, database entries around
/// `mean_subject_len`; cost per pair is m*n DP cells at `mops_per_megacell`.
struct AlignmentBatchParams {
  std::size_t pairs = 500;
  double mean_query_len = 400.0;
  double mean_subject_len = 2000.0;
  double length_cv = 0.6;
  double mops_per_megacell = 8.0;
  std::uint64_t seed = 42;
};
[[nodiscard]] TaskSet make_alignment_batch(const AlignmentBatchParams& p);

/// Adaptive-quadrature panels: mostly uniform cost with occasional refined
/// panels (near-regular farm workload; the contrast case to Mandelbrot).
struct QuadratureParams {
  std::size_t panels = 2000;
  double mean_mops = 20.0;
  double refine_probability = 0.05;
  double refine_factor = 8.0;
  std::uint64_t seed = 42;
};
[[nodiscard]] TaskSet make_quadrature_panels(const QuadratureParams& p);

/// Video/image processing pipeline: decode -> denoise -> segment -> annotate
/// -> encode.  Stage costs are deliberately unbalanced (segment dominates)
/// so stage-to-node mapping matters.
struct ImagePipelineParams {
  double frame_bytes = 512e3;   ///< payload entering the pipeline per frame
  double work_scale = 1.0;      ///< multiplies every stage cost
  std::size_t stages = 5;       ///< 3..5: tail stages dropped if fewer
};
[[nodiscard]] PipelineSpec make_image_pipeline(const ImagePipelineParams& p);

/// Balanced synthetic pipeline of `depth` equal stages (control case).
[[nodiscard]] PipelineSpec make_uniform_pipeline(std::size_t depth,
                                                 double stage_mops,
                                                 double item_bytes);

/// The farm applications above as an indexable mix, sized for job-stream
/// runs: a GridService tenant is one of these task sets, not a
/// benchmark-scale sweep, so each kind materialises a few dozen to a few
/// hundred tasks.  `seed` varies the stochastic kinds (alignment lengths,
/// quadrature refinement; the Mandelbrot tile costs are the function's
/// own, so there it scales the sweep window instead).
enum class ApplicationKind : std::size_t {
  MandelbrotSweep = 0,
  AlignmentBatch = 1,
  QuadraturePanels = 2,
};

[[nodiscard]] constexpr std::size_t application_mix_size() { return 3; }
[[nodiscard]] const char* to_string(ApplicationKind kind);
[[nodiscard]] TaskSet make_application_task_set(ApplicationKind kind,
                                                std::uint64_t seed);

}  // namespace grasp::workloads
