#include "workloads/applications.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "support/rng.hpp"
#include "workloads/kernels.hpp"

namespace grasp::workloads {

TaskSet make_mandelbrot_sweep(const MandelbrotSweepParams& p) {
  if (p.tiles_x == 0 || p.tiles_y == 0 || p.probe_resolution == 0)
    throw std::invalid_argument("make_mandelbrot_sweep: zero dimension");
  constexpr double kXMin = -2.0, kXMax = 1.0;
  constexpr double kYMin = -1.25, kYMax = 1.25;
  const double tile_w = (kXMax - kXMin) / static_cast<double>(p.tiles_x);
  const double tile_h = (kYMax - kYMin) / static_cast<double>(p.tiles_y);

  TaskSet set;
  set.name = "mandelbrot-" + std::to_string(p.tiles_x) + "x" +
             std::to_string(p.tiles_y);
  set.tasks.reserve(p.tiles_x * p.tiles_y);
  std::size_t id = 0;
  for (std::size_t ty = 0; ty < p.tiles_y; ++ty) {
    for (std::size_t tx = 0; tx < p.tiles_x; ++tx) {
      const double x0 = kXMin + static_cast<double>(tx) * tile_w;
      const double y0 = kYMin + static_cast<double>(ty) * tile_h;
      const std::uint64_t iterations = mandelbrot_tile_iterations(
          x0, y0, tile_w, tile_h, p.probe_resolution, p.max_iterations);
      TaskSpec t;
      t.id = TaskId{id++};
      t.work = Mops{p.mops_per_kilo_iteration *
                    static_cast<double>(iterations) / 1000.0};
      t.input = Bytes{p.tile_input_bytes};
      t.output = Bytes{p.tile_output_bytes};
      set.tasks.push_back(t);
    }
  }
  return set;
}

TaskSet make_alignment_batch(const AlignmentBatchParams& p) {
  if (p.pairs == 0)
    throw std::invalid_argument("make_alignment_batch: zero pairs");
  Rng rng(p.seed);
  const double sigma2 = std::log(1.0 + p.length_cv * p.length_cv);
  const double sigma = std::sqrt(sigma2);
  auto draw_len = [&](double mean) {
    const double mu = std::log(mean) - sigma2 / 2.0;
    return std::max(16.0, rng.lognormal(mu, sigma));
  };

  TaskSet set;
  set.name = "alignment-" + std::to_string(p.pairs);
  set.tasks.reserve(p.pairs);
  for (std::size_t i = 0; i < p.pairs; ++i) {
    const double m = draw_len(p.mean_query_len);
    const double n = draw_len(p.mean_subject_len);
    TaskSpec t;
    t.id = TaskId{i};
    t.work = Mops{p.mops_per_megacell * (m * n) / 1e6};
    t.input = Bytes{m + n};  // one byte per residue
    t.output = Bytes{256};   // score + traceback summary
    set.tasks.push_back(t);
  }
  return set;
}

TaskSet make_quadrature_panels(const QuadratureParams& p) {
  if (p.panels == 0)
    throw std::invalid_argument("make_quadrature_panels: zero panels");
  Rng rng(p.seed);
  TaskSet set;
  set.name = "quadrature-" + std::to_string(p.panels);
  set.tasks.reserve(p.panels);
  for (std::size_t i = 0; i < p.panels; ++i) {
    const bool refined = rng.bernoulli(p.refine_probability);
    const double jitter = rng.uniform(0.9, 1.1);
    TaskSpec t;
    t.id = TaskId{i};
    t.work = Mops{p.mean_mops * jitter * (refined ? p.refine_factor : 1.0)};
    t.input = Bytes{48};   // panel bounds + tolerance
    t.output = Bytes{16};  // partial integral + error estimate
    set.tasks.push_back(t);
  }
  return set;
}

PipelineSpec make_image_pipeline(const ImagePipelineParams& p) {
  if (p.stages < 3 || p.stages > 5)
    throw std::invalid_argument("make_image_pipeline: stages must be in 3..5");
  struct Proto {
    const char* name;
    double mops;
    double out_fraction;  // output bytes as fraction of frame
  };
  // Segment dominates: the pipeline is intentionally unbalanced.
  const Proto protos[5] = {
      {"decode", 40.0, 1.0},   {"denoise", 80.0, 1.0},
      {"segment", 240.0, 0.5}, {"annotate", 30.0, 0.5},
      {"encode", 60.0, 0.1},
  };
  PipelineSpec spec;
  spec.name = "image-pipeline-" + std::to_string(p.stages);
  spec.source_bytes = Bytes{p.frame_bytes};
  for (std::size_t s = 0; s < p.stages; ++s) {
    StageSpec stage;
    stage.id = StageId{s};
    stage.name = protos[s].name;
    stage.work_per_item = Mops{protos[s].mops * p.work_scale};
    stage.output_bytes = Bytes{p.frame_bytes * protos[s].out_fraction};
    spec.stages.push_back(stage);
  }
  return spec;
}

PipelineSpec make_uniform_pipeline(std::size_t depth, double stage_mops,
                                   double item_bytes) {
  if (depth == 0)
    throw std::invalid_argument("make_uniform_pipeline: zero depth");
  PipelineSpec spec;
  spec.name = "uniform-pipeline-" + std::to_string(depth);
  spec.source_bytes = Bytes{item_bytes};
  for (std::size_t s = 0; s < depth; ++s) {
    StageSpec stage;
    stage.id = StageId{s};
    stage.name = "stage" + std::to_string(s);
    stage.work_per_item = Mops{stage_mops};
    stage.output_bytes = Bytes{item_bytes};
    spec.stages.push_back(stage);
  }
  return spec;
}

const char* to_string(ApplicationKind kind) {
  switch (kind) {
    case ApplicationKind::MandelbrotSweep:
      return "mandelbrot";
    case ApplicationKind::AlignmentBatch:
      return "alignment";
    case ApplicationKind::QuadraturePanels:
      return "quadrature";
  }
  return "?";
}

TaskSet make_application_task_set(ApplicationKind kind, std::uint64_t seed) {
  switch (kind) {
    case ApplicationKind::MandelbrotSweep: {
      MandelbrotSweepParams p;
      p.tiles_x = 8;
      p.tiles_y = 8;
      p.probe_resolution = 8;
      // The sweep itself is deterministic; the seed perturbs the per-task
      // cost scale so distinct tenants are not byte-identical workloads.
      p.mops_per_kilo_iteration =
          1.0 + 0.5 * Rng(seed).uniform();
      return make_mandelbrot_sweep(p);
    }
    case ApplicationKind::AlignmentBatch: {
      AlignmentBatchParams p;
      p.pairs = 120;
      p.seed = seed;
      return make_alignment_batch(p);
    }
    case ApplicationKind::QuadraturePanels: {
      QuadratureParams p;
      p.panels = 300;
      p.seed = seed;
      return make_quadrature_panels(p);
    }
  }
  throw std::invalid_argument("make_application_task_set: unknown kind");
}

}  // namespace grasp::workloads
