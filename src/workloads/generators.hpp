// Synthetic task-set generators over standard cost distributions.
//
// The farm experiments sweep task irregularity: regular (constant),
// mildly irregular (uniform/normal), skewed (lognormal), heavy-tailed
// (pareto) and bimodal ("mostly cheap, a few monsters").  All generators
// are seed-deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/task.hpp"

namespace grasp::workloads {

enum class CostDistribution {
  Constant,
  Uniform,    ///< uniform in [mean/2, 3*mean/2]
  Normal,     ///< mean, cv -> stddev = cv*mean, truncated at mean/10
  LogNormal,  ///< matched to requested mean and cv
  Bimodal,    ///< 90% cheap (mean/2), 10% expensive (~5.5x mean)
  Pareto,     ///< shape 2.2, scale matched to mean (heavy tail)
};

[[nodiscard]] const char* to_string(CostDistribution d);
[[nodiscard]] CostDistribution cost_distribution_from_string(
    const std::string& name);

struct TaskSetParams {
  std::size_t count = 1000;
  double mean_mops = 100.0;      ///< average compute cost per task
  double cv = 0.5;               ///< coefficient of variation (where used)
  CostDistribution distribution = CostDistribution::LogNormal;
  double input_bytes = 10e3;
  double output_bytes = 1e3;
  std::uint64_t seed = 42;
};

/// Generate `params.count` tasks with ids 0..count-1.
[[nodiscard]] TaskSet make_task_set(const TaskSetParams& params);

// ---------------------------------------------------------------------------
// Open-loop job-arrival streams (the GridService workload).
// ---------------------------------------------------------------------------

/// One scheduled job arrival.
struct JobArrival {
  Seconds at;             ///< absolute arrival time on the backend clock
  std::size_t kind = 0;   ///< index into the caller's job mix
  std::uint64_t seed = 0; ///< per-job workload seed (derived, deterministic)
};

/// Non-homogeneous Poisson process with a diurnal rate profile:
///
///   rate(t) = base_rate_per_s * (1 + diurnal_amplitude *
///             sin(2*pi * (t/diurnal_period + diurnal_phase)))
///
/// sampled by thinning against the peak rate, so arrivals cluster around
/// the profile's crests the way grid submissions cluster around working
/// hours (the period is typically compressed far below 86400 s to fit
/// simulation horizons).  Each accepted arrival gets a kind drawn from
/// `kind_weights` and an independent workload seed.  Seed-deterministic.
struct JobArrivalParams {
  Seconds horizon = Seconds{3600.0};   ///< generate arrivals in [0, horizon)
  double base_rate_per_s = 1.0 / 120.0;
  double diurnal_amplitude = 0.6;      ///< rate swing fraction, in [0, 1)
  Seconds diurnal_period = Seconds{1200.0};
  double diurnal_phase = 0.0;          ///< fraction of a period, in [0, 1)
  /// Relative weight per job kind; empty means one kind (all zeros).
  std::vector<double> kind_weights;
  std::uint64_t seed = 42;
};

[[nodiscard]] std::vector<JobArrival> make_job_arrivals(
    const JobArrivalParams& params);

}  // namespace grasp::workloads
