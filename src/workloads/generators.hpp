// Synthetic task-set generators over standard cost distributions.
//
// The farm experiments sweep task irregularity: regular (constant),
// mildly irregular (uniform/normal), skewed (lognormal), heavy-tailed
// (pareto) and bimodal ("mostly cheap, a few monsters").  All generators
// are seed-deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/task.hpp"

namespace grasp::workloads {

enum class CostDistribution {
  Constant,
  Uniform,    ///< uniform in [mean/2, 3*mean/2]
  Normal,     ///< mean, cv -> stddev = cv*mean, truncated at mean/10
  LogNormal,  ///< matched to requested mean and cv
  Bimodal,    ///< 90% cheap (mean/2), 10% expensive (~5.5x mean)
  Pareto,     ///< shape 2.2, scale matched to mean (heavy tail)
};

[[nodiscard]] const char* to_string(CostDistribution d);
[[nodiscard]] CostDistribution cost_distribution_from_string(
    const std::string& name);

struct TaskSetParams {
  std::size_t count = 1000;
  double mean_mops = 100.0;      ///< average compute cost per task
  double cv = 0.5;               ///< coefficient of variation (where used)
  CostDistribution distribution = CostDistribution::LogNormal;
  double input_bytes = 10e3;
  double output_bytes = 1e3;
  std::uint64_t seed = 42;
};

/// Generate `params.count` tasks with ids 0..count-1.
[[nodiscard]] TaskSet make_task_set(const TaskSetParams& params);

}  // namespace grasp::workloads
