#include "workloads/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace grasp::workloads {

std::uint64_t mandelbrot_tile_iterations(double x0, double y0, double w,
                                         double h, std::size_t resolution,
                                         std::size_t max_iterations) {
  std::uint64_t total = 0;
  const double res = static_cast<double>(resolution);
  for (std::size_t py = 0; py < resolution; ++py) {
    for (std::size_t px = 0; px < resolution; ++px) {
      const double cx = x0 + (static_cast<double>(px) + 0.5) / res * w;
      const double cy = y0 + (static_cast<double>(py) + 0.5) / res * h;
      double zx = 0.0, zy = 0.0;
      std::size_t iter = 0;
      while (iter < max_iterations && zx * zx + zy * zy <= 4.0) {
        const double nzx = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = nzx;
        ++iter;
      }
      total += iter;
    }
  }
  return total;
}

int smith_waterman_score(std::string_view a, std::string_view b) {
  constexpr int kMatch = 2, kMismatch = -1, kGap = -2;
  if (a.empty() || b.empty()) return 0;
  // Two-row DP keeps memory at O(|b|).
  std::vector<int> prev(b.size() + 1, 0), curr(b.size() + 1, 0);
  int best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = 0;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int sub = (a[i - 1] == b[j - 1]) ? kMatch : kMismatch;
      const int diag = prev[j - 1] + sub;
      const int up = prev[j] + kGap;
      const int left = curr[j - 1] + kGap;
      curr[j] = std::max({0, diag, up, left});
      best = std::max(best, curr[j]);
    }
    std::swap(prev, curr);
  }
  return best;
}

std::string random_dna(std::size_t n, std::uint64_t seed) {
  static constexpr char kAlphabet[] = {'A', 'C', 'G', 'T'};
  Rng rng(seed);
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(kAlphabet[rng.uniform_index(4)]);
  return s;
}

double burn_mops(double mops) {
  if (mops <= 0.0) return 0.0;
  // ~4 flops per inner iteration; one "Mop" = 1e6 operations.
  const auto iterations = static_cast<std::uint64_t>(mops * 1e6 / 4.0);
  double x = 1.000000001, acc = 0.0;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    acc += x * 1.0000001;    // fma-shaped
    x = x * 0.9999999 + 1e-9;
  }
  return acc + x;
}

double simpson_integral(double a, double b, std::size_t n) {
  if (n < 2) n = 2;
  if (n % 2 != 0) ++n;
  auto f = [](double x) { return std::sin(x) * std::exp(-x / 4.0); };
  const double h = (b - a) / static_cast<double>(n);
  double acc = f(a) + f(b);
  for (std::size_t i = 1; i < n; ++i) {
    const double x = a + static_cast<double>(i) * h;
    acc += f(x) * ((i % 2 == 0) ? 2.0 : 4.0);
  }
  return acc * h / 3.0;
}

}  // namespace grasp::workloads
