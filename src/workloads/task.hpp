// Task and stage specifications: the workload currency of the skeletons.
//
// Skeletons treat work abstractly: a farm task is (compute cost, input
// payload, output payload); a pipeline stage is per-item compute plus the
// bytes it passes downstream.  This is precisely the information GRASP's
// calibration needs to reason about the computation/communication ratio.
#pragma once

#include <string>
#include <vector>

#include "support/ids.hpp"

namespace grasp::workloads {

/// One independent unit of farm work.
struct TaskSpec {
  TaskId id;
  Mops work;     ///< compute cost on a unit-speed (1 Mops/s) dedicated node
  Bytes input;   ///< farmer -> worker payload
  Bytes output;  ///< worker -> farmer payload
};

/// An ordered batch of farm tasks.
struct TaskSet {
  std::string name;
  std::vector<TaskSpec> tasks;

  [[nodiscard]] std::size_t size() const { return tasks.size(); }
  [[nodiscard]] Mops total_work() const {
    Mops total = Mops::zero();
    for (const auto& t : tasks) total += t.work;
    return total;
  }
  [[nodiscard]] Bytes total_input() const {
    Bytes total = Bytes::zero();
    for (const auto& t : tasks) total += t.input;
    return total;
  }
};

/// One pipeline stage: every item passing through costs `work_per_item`
/// and emits `output_bytes` to the next stage.
struct StageSpec {
  StageId id;
  std::string name;
  Mops work_per_item;
  Bytes output_bytes;
};

/// A linear pipeline: stages in flow order plus the source payload size.
struct PipelineSpec {
  std::string name;
  Bytes source_bytes;  ///< payload entering stage 0 per item
  std::vector<StageSpec> stages;

  [[nodiscard]] std::size_t depth() const { return stages.size(); }
  [[nodiscard]] Mops work_per_item() const {
    Mops total = Mops::zero();
    for (const auto& s : stages) total += s.work_per_item;
    return total;
  }
};

}  // namespace grasp::workloads
