// Adaptive image-processing pipeline.
//
// Streams frames through decode -> denoise -> segment -> annotate -> encode
// on a small cluster.  Mid-run, the node carrying the dominant "segment"
// stage is reclaimed by its owner (heavy external load); the adaptive
// pipeline detects the bottleneck via its round-max threshold, remaps the
// stage to a spare node (paying an explicit state migration), and recovers.
//
//   ./image_pipeline [key=value ...]   e.g. frames=400 degrade_at=90
#include <iostream>

#include "core/backend_sim.hpp"
#include "core/pipeline.hpp"
#include "gridsim/scenarios.hpp"
#include "support/config.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "workloads/applications.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  Config cfg;
  cfg.override_with({argv + 1, argv + argc});
  if (cfg.get_bool("verbose", false)) set_log_level(LogLevel::Info);
  const auto frames = static_cast<std::size_t>(cfg.get_int("frames", 400));
  const double degrade_at = cfg.get_double("degrade_at", 120.0);
  const double extra_load = cfg.get_double("extra_load", 4.0);

  const auto spec = workloads::make_image_pipeline(
      {.frame_bytes = 256e3, .work_scale = 1.0, .stages = 5});
  std::cout << "pipeline: " << spec.name << " — stages:";
  for (const auto& s : spec.stages)
    std::cout << ' ' << s.name << '(' << s.work_per_item.value << " Mops)";
  std::cout << "\n\n";

  auto build = [&](NodeId victim) {
    gridsim::GridBuilder b;
    const SiteId s = b.add_site("cluster", Seconds{1e-4}, BytesPerSecond{1e9});
    for (int i = 0; i < 7; ++i) b.add_node(s, 150.0);
    gridsim::Grid grid = b.build();
    if (victim.is_valid())
      gridsim::inject_load_step_on(grid, victim, Seconds{degrade_at},
                                   extra_load);
    return grid;
  };

  // Find the segment stage's node, then script its reclamation.
  NodeId victim;
  {
    gridsim::Grid grid = build(NodeId::invalid());
    core::SimBackend backend(grid);
    core::PipelineParams probe_params;
    probe_params.adaptation_enabled = false;
    victim = core::Pipeline(probe_params)
                 .run(backend, grid, grid.node_ids(), spec, 3)
                 .final_mapping[2];
  }
  std::cout << "segment stage initially on node " << victim.value
            << "; that node is reclaimed at t=" << degrade_at << " s\n\n";

  gridsim::Grid grid = build(victim);
  core::SimBackend backend(grid);
  core::PipelineParams params;
  params.threshold.z = 1.8;
  const core::PipelineReport report =
      core::Pipeline(params).run(backend, grid, grid.node_ids(), spec, frames);

  Table stages({"stage", "final_node", "frames", "mean_service_s",
                "busy_fraction"});
  for (std::size_t s = 0; s < report.stages.size(); ++s) {
    const auto& st = report.stages[s];
    stages.add_row({spec.stages[s].name, std::to_string(st.node.value),
                    std::to_string(st.items), Table::num(st.mean_service_s, 3),
                    Table::num(st.busy_fraction, 2)});
  }
  std::cout << stages.to_string() << '\n';

  std::cout << "frames completed : " << report.items_completed << " / "
            << frames << (report.output_in_order ? " (in order)" : "") << '\n'
            << "makespan         : " << Table::num(report.makespan.value, 1)
            << " s\n"
            << "throughput       : " << Table::num(report.throughput(), 3)
            << " frames/s\n"
            << "frame latency    : mean "
            << Table::num(report.mean_latency_s, 2) << " s, p95 "
            << Table::num(report.p95_latency_s, 2) << " s\n"
            << "stage remaps     : " << report.remaps << '\n';
  for (const auto& e : report.trace.events()) {
    if (e.kind == gridsim::TraceEventKind::StageRemapped &&
        e.note == "migrating")
      std::cout << "  -> at t=" << Table::num(e.at.value, 1) << " s stage "
                << spec.stages[static_cast<std::size_t>(e.value)].name
                << " migrated to node " << e.node.value << '\n';
  }
  return 0;
}
