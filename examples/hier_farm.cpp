// Hierarchical farm-of-farms: sharded coordination at scale.
//
// One root node farms super-grants of tasks to K sub-farmers, each of
// which runs the full GRASP loop (calibration probes, adaptive chunks,
// failure detection) over its own worker shard.  Monitor rounds aggregate
// along an arity-4 reduction tree, so the root's event-loop load stays
// near-constant while the worker tier grows.  By default one sub-farmer
// is crashed mid-run to show the shard-local promotion: a standby inside
// the orphaned shard takes over, rolls back the un-replicated suffix of
// its completion log, and the root's exactly-once accounting never
// wobbles.
//
//   ./hier_farm [key=value ...] [--trace-out t.json] [--metrics-out m.jsonl]
//   e.g. ./hier_farm workers=64 per_shard=8 tasks=512 crash_at=30
//
// Set crash_at=0 to run churn-free.  --trace-out / --metrics-out export
// the usual Chrome-trace / JSONL telemetry; each shard's chunk spans show
// up as their own "shard" subtree.
#include <iostream>

#include "bench/common.hpp"
#include "core/backend_sim.hpp"
#include "core/hier_farm.hpp"
#include "obs/flight_recorder.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  const bench::ObsOptions obs_opts = bench::parse_obs_options(argc, argv);
  Config cfg;
  cfg.override_with(bench::non_obs_args(argc, argv));
  const auto workers = static_cast<std::size_t>(cfg.get_int("workers", 32));
  const auto per_shard =
      static_cast<std::size_t>(cfg.get_int("per_shard", 8));
  const auto task_count =
      static_cast<std::size_t>(cfg.get_int("tasks", 8 * 32));
  const double crash_at = cfg.get_double("crash_at", 30.0);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  // Node 0 is the root; workers cycle through an 8x speed spread so the
  // per-shard calibration has something real to discover.
  gridsim::GridBuilder gb;
  const SiteId site = gb.add_site("a");
  gb.add_node(site, 100.0);  // root
  const double speeds[] = {50.0, 100.0, 200.0, 400.0};
  for (std::size_t i = 0; i < workers; ++i)
    gb.add_node(site, speeds[i % 4]);
  gridsim::Grid grid = gb.build();

  // Work out who coordinates shard 0 and schedule its demise.
  std::vector<NodeId> pool;
  std::vector<double> pool_speeds;
  for (std::size_t i = 0; i < workers; ++i) {
    pool.push_back(NodeId{i + 1});
    pool_speeds.push_back(speeds[i % 4]);
  }
  const std::size_t shards =
      core::shard_count_for(workers, per_shard, 16);
  const auto plan = core::plan_shards(pool, pool_speeds, shards);
  if (crash_at > 0.0 && !plan.empty() && plan[0].size() > 1) {
    const NodeId victim = plan[0].front();
    grid.node(victim).add_downtime({Seconds{crash_at}, Seconds{1e9}});
    grid.set_churn(gridsim::ChurnTimeline(
        {{Seconds{crash_at}, gridsim::ChurnEventKind::Crash, victim}}));
    std::cout << "planted crash: sub-farmer of shard 0 (node "
              << victim.value << ") dies at t=" << crash_at << "s\n\n";
  }

  workloads::TaskSetParams wl;
  wl.count = task_count;
  wl.mean_mops = 2000.0;
  wl.cv = 0.6;
  wl.seed = seed + 1;
  const workloads::TaskSet tasks = workloads::make_task_set(wl);

  core::HierFarmParams params;
  params.workers_per_shard = per_shard;
  params.detector.heartbeat_period = Seconds{1.0};
  params.detector.timeout = Seconds{4.0};
  params.promotion_handshake = Seconds{2.0};

  obs::Telemetry telemetry;  // detail on: per-shard span subtrees
  params.telemetry = &telemetry;
  obs::FlightRecorder flight(256);
  if (!obs_opts.flight_out.empty()) {
    flight.set_dump_path(obs_opts.flight_out);
    telemetry.flight = &flight;
  }

  core::SimBackend backend(grid);
  const core::HierFarmReport r =
      core::HierFarm(params).run(backend, grid, grid.node_ids(), tasks);
  if (!bench::export_telemetry(telemetry, obs_opts)) return 1;

  std::cout << "hierarchy: 1 root + " << workers << " workers in "
            << r.shards << " shards (target " << per_shard
            << " workers each)\n\n";

  // The coordination timeline: sub-farmer losses and in-shard promotions.
  if (r.promotions > 0) {
    std::cout << "coordination timeline:\n";
    for (const auto& e : r.trace.events()) {
      const char* what = nullptr;
      switch (e.kind) {
        case gridsim::TraceEventKind::FarmerCrashDetected:
          what = "sub-farmer lost";
          break;
        case gridsim::TraceEventKind::FarmerPromoted:
          what = "promoted in-shard";
          break;
        default:
          continue;
      }
      std::cout << "  t=" << e.at.value << "s  node " << e.node.value
                << "  " << what
                << (e.note.empty() ? "" : "  (" + e.note + ")") << "\n";
    }
    std::cout << "\n";
  }

  Table per_shard_t({"shard", "sub_farmer", "workers", "tasks", "grants",
                     "events", "capacity_mops"});
  for (std::size_t k = 0; k < r.shard_summaries.size(); ++k) {
    const auto& s = r.shard_summaries[k];
    per_shard_t.add_row(
        {Table::num(static_cast<long long>(k)),
         Table::num(static_cast<long long>(s.sub_farmer.value)),
         Table::num(static_cast<long long>(s.workers)),
         Table::num(static_cast<long long>(s.tasks_completed)),
         Table::num(static_cast<long long>(s.grants)),
         Table::num(static_cast<long long>(s.events)),
         Table::num(s.capacity_mops, 0)});
  }
  std::cout << per_shard_t.to_string() << "\n";

  Table summary({"metric", "value"});
  summary.add_row({"makespan_s", Table::num(r.makespan.value, 1)});
  summary.add_row({"tasks (incl. probes)",
                   Table::num(static_cast<long long>(
                       r.tasks_completed + r.calibration_tasks))});
  summary.add_row({"root events", Table::num(static_cast<long long>(
                                      r.root_events))});
  summary.add_row({"root events/vsec",
                   Table::num(r.root_events_per_vsec(), 2)});
  summary.add_row({"shard events", Table::num(static_cast<long long>(
                                       r.shard_events))});
  summary.add_row({"monitor rounds", Table::num(static_cast<long long>(
                                         r.monitor_rounds))});
  summary.add_row({"promotions", Table::num(static_cast<long long>(
                                     r.promotions))});
  summary.add_row({"redispatched tasks",
                   Table::num(static_cast<long long>(r.redispatched))});
  std::cout << summary.to_string();
  return 0;
}
