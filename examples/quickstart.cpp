// Quickstart: the complete GRASP flow in ~40 lines.
//
// Builds a 16-node heterogeneous grid with mixed dynamic load, runs an
// irregular 2000-task farm through the four-phase driver, and prints the
// phase timeline plus the adaptive-vs-static comparison.
//
//   ./quickstart [key=value ...]     e.g.  ./quickstart nodes=32 tasks=4000
#include <iostream>

#include "core/backend_sim.hpp"
#include "core/baselines.hpp"
#include "core/grasp.hpp"
#include "gridsim/scenarios.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  Config cfg;
  cfg.override_with({argv + 1, argv + argc});
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
  const auto task_count = static_cast<std::size_t>(cfg.get_int("tasks", 2000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  // A non-dedicated heterogeneous grid: 2 sites, mixed background dynamics.
  gridsim::ScenarioParams scenario;
  scenario.node_count = nodes;
  scenario.dynamics = gridsim::Dynamics::Mixed;
  scenario.seed = seed;
  gridsim::Grid grid = gridsim::make_grid(scenario);

  // An irregular workload: lognormal task costs (cv = 1.0).
  workloads::TaskSetParams wl;
  wl.count = task_count;
  wl.mean_mops = 120.0;
  wl.cv = 1.0;
  wl.seed = seed + 1;
  const workloads::TaskSet tasks = workloads::make_task_set(wl);

  // --- The four-phase GRASP flow. ---------------------------------------
  core::GraspProgram program("quickstart-sweep");
  program.use_task_farm(core::make_adaptive_farm_params())
      .with_tasks(tasks);
  core::GraspExecutable exe = program.compile(grid);
  const core::RunSummary summary = exe.execute();

  std::cout << "application: " << summary.application << "  (skeleton: "
            << summary.skeleton << ")\n\nphase timeline (virtual seconds):\n";
  Table timeline({"phase", "began", "ended", "detail"});
  for (const auto& p : summary.phases)
    timeline.add_row({p.phase, Table::num(p.began.value, 2),
                      Table::num(p.ended.value, 2), p.detail});
  std::cout << timeline.to_string();
  std::cout << "feedback transitions (execution -> calibration): "
            << summary.feedback_transitions << "\n\n";

  const core::FarmReport& farm = *summary.farm;

  // --- Compare with the non-adaptive baseline on the same grid. ---------
  core::SimBackend static_backend(grid);
  core::StaticBlockFarm static_farm;
  const core::BaselineReport block =
      static_farm.run(static_backend, grid.node_ids(), tasks);

  Table results({"scheduler", "makespan_s", "throughput_tasks_per_s"});
  results.add_row({"GRASP adaptive farm", Table::num(farm.makespan.value, 1),
                   Table::num(farm.throughput(), 2)});
  results.add_row({"static block farm", Table::num(block.makespan.value, 1),
                   Table::num(static_cast<double>(block.tasks_completed) /
                                  block.makespan.value,
                              2)});
  std::cout << results.to_string() << '\n';
  std::cout << "adaptive speedup over static: "
            << Table::num(block.makespan.value / farm.makespan.value, 2)
            << "x  (recalibrations: " << farm.recalibrations
            << ", reissues: " << farm.reissues << ")\n";
  return 0;
}
