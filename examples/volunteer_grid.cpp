// Volunteer grid: the resilience subsystem end to end.
//
// A volunteer pool is the harshest membership environment GRASP can face:
// machines crash without warning, owners reclaim them mid-chunk, and new
// volunteers appear at any moment.  This example runs an adaptive farm over
// a churning 12-node pool with 4 late-joining volunteers, then prints the
// four-phase timeline — including the zero-width "recovery" records where
// the engine absorbed churn — and the resilience ledger.
//
//   ./volunteer_grid [key=value ...] [--trace-out t.json] [--metrics-out m.jsonl]
//   e.g.  ./volunteer_grid mtbf=120 --trace-out trace.json
#include <iostream>

#include "bench/common.hpp"
#include "core/backend_sim.hpp"
#include "core/baselines.hpp"
#include "core/grasp.hpp"
#include "gridsim/scenarios.hpp"
#include "obs/bridge.hpp"
#include "obs/flight_recorder.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  const bench::ObsOptions obs_opts = bench::parse_obs_options(argc, argv);
  Config cfg;
  cfg.override_with(bench::non_obs_args(argc, argv));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 12));
  const auto spares = static_cast<std::size_t>(cfg.get_int("spares", 4));
  const auto task_count = static_cast<std::size_t>(cfg.get_int("tasks", 1500));
  const double mtbf = cfg.get_double("mtbf", 200.0);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  // A churning volunteer pool: crashes stall whatever they were computing,
  // 70% of volunteers come back, spares trickle in over the first minutes.
  gridsim::ChurnScenarioParams scenario;
  scenario.grid.node_count = nodes;
  scenario.grid.dynamics = gridsim::Dynamics::Walk;
  scenario.grid.seed = seed;
  scenario.spare_nodes = spares;
  scenario.mtbf = mtbf;
  scenario.churn_seed = seed + 7;
  gridsim::Grid grid = gridsim::make_churn_grid(scenario);

  workloads::TaskSetParams wl;
  wl.count = task_count;
  wl.mean_mops = 120.0;
  wl.cv = 1.0;
  wl.seed = seed + 1;
  const workloads::TaskSet tasks = workloads::make_task_set(wl);

  core::FarmParams params = core::make_adaptive_farm_params();
  params.chunk_size = 4;
  params.resilience.enabled = true;
  params.resilience.detector.heartbeat_period = Seconds{1.0};
  params.resilience.detector.timeout = Seconds{5.0};

  obs::Telemetry telemetry;  // detail on: spans + histograms recorded
  params.telemetry = &telemetry;
  obs::FlightRecorder flight(256);
  if (!obs_opts.flight_out.empty()) {
    flight.set_dump_path(obs_opts.flight_out);
    telemetry.flight = &flight;
  }

  core::GraspProgram program("volunteer-sweep");
  program.use_task_farm(params).with_tasks(tasks);
  const core::RunSummary summary = program.compile(grid).execute();
  const core::FarmReport& farm = *summary.farm;

  // Membership instants from the engine trace join the native span stream.
  obs::BridgeOptions bridge_opts;
  bridge_opts.task_spans = false;
  obs::bridge_trace(farm.trace, telemetry.spans, bridge_opts);
  if (!bench::export_telemetry(telemetry, obs_opts)) return 1;

  std::cout << "application: " << summary.application
            << "  (pool: " << nodes << " volunteers + " << spares
            << " latecomers, mtbf " << mtbf << " s)\n\n"
            << "phase timeline (virtual seconds):\n";
  Table timeline({"phase", "began", "ended", "detail"});
  for (const auto& p : summary.phases)
    timeline.add_row({p.phase, Table::num(p.began.value, 2),
                      Table::num(p.ended.value, 2), p.detail});
  std::cout << timeline.to_string()
            << "feedback transitions: " << summary.feedback_transitions
            << "   membership transitions: " << summary.membership_transitions
            << "\n\nresilience ledger:\n";

  const auto& res = farm.resilience;
  Table ledger({"metric", "value"});
  ledger.add_row({"tasks completed",
                  Table::num(static_cast<long long>(
                      farm.tasks_completed + farm.calibration_tasks))});
  ledger.add_row({"crashes detected",
                  Table::num(static_cast<long long>(res.crashes_detected))});
  ledger.add_row({"graceful leaves",
                  Table::num(static_cast<long long>(res.leaves))});
  ledger.add_row({"joins observed",
                  Table::num(static_cast<long long>(res.joins))});
  ledger.add_row({"joiners admitted",
                  Table::num(static_cast<long long>(res.admissions))});
  ledger.add_row({"chunks lost to crashes",
                  Table::num(static_cast<long long>(res.chunks_lost))});
  ledger.add_row({"tasks re-dispatched",
                  Table::num(static_cast<long long>(res.tasks_redispatched))});
  ledger.add_row({"zombie completions discarded",
                  Table::num(static_cast<long long>(res.zombie_completions))});
  ledger.add_row({"wasted work (Mops)", Table::num(res.wasted_mops, 0)});
  std::cout << ledger.to_string();

  std::cout << "\nmakespan: " << Table::num(farm.makespan.value, 1)
            << " s over a pool that lost " << res.crashes_detected
            << " member(s) and gained " << res.admissions
            << " — every task accounted for exactly once.\n";
  return 0;
}
