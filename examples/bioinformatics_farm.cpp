// Sequence-alignment farm on the *threaded* backend: real work, real
// concurrency, same skeleton.
//
// Every task genuinely runs Smith–Waterman local alignment (the actual DP,
// see workloads/kernels.hpp) inside a ThreadBackend worker thread, attached
// through FarmParams::calibration.task_body.  The engine still charges the
// grid model's heterogeneous timing (scaled so the demo finishes in about a
// second of wall clock).  The same farm is then replayed on the simulator —
// identical skeleton code path, no bodies executed — as the API-equivalence
// demonstration.
//
//   ./bioinformatics_farm [key=value ...]   e.g. pairs=60 time_scale=0.0005
#include <iostream>
#include <mutex>
#include <vector>

#include "core/backend_sim.hpp"
#include "core/backend_thread.hpp"
#include "core/baselines.hpp"
#include "core/task_farm.hpp"
#include "gridsim/scenarios.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "workloads/applications.hpp"
#include "workloads/kernels.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  Config cfg;
  cfg.override_with({argv + 1, argv + argc});
  const auto pairs = static_cast<std::size_t>(cfg.get_int("pairs", 60));
  const double time_scale = cfg.get_double("time_scale", 5e-4);

  // Queries vs database subjects; task costs follow the real m*n DP size.
  workloads::AlignmentBatchParams ap;
  ap.pairs = pairs;
  ap.mean_query_len = 120.0;
  ap.mean_subject_len = 360.0;
  ap.mops_per_megacell = 200.0;
  const workloads::TaskSet batch = workloads::make_alignment_batch(ap);

  std::vector<std::string> queries, subjects;
  for (std::size_t i = 0; i < pairs; ++i) {
    // Sequence lengths mirror the task's declared input payload.
    const double total = batch.tasks[i].input.value;
    const auto qlen = static_cast<std::size_t>(total / 4.0);
    const auto slen =
        static_cast<std::size_t>(total - static_cast<double>(qlen));
    queries.push_back(workloads::random_dna(qlen, 1000 + i));
    subjects.push_back(workloads::random_dna(slen, 2000 + i));
  }

  const gridsim::Grid grid = gridsim::make_uniform_grid(4, 150.0);

  // Attach the real alignment as the per-task body.  It runs on whichever
  // worker thread the farm dispatched the task to.
  std::vector<int> scores(pairs, -1);
  std::mutex scores_mutex;
  core::FarmParams params = core::make_demand_farm_params();
  params.monitor.period = Seconds{5.0};
  params.calibration.task_body = [&](const workloads::TaskSpec& task) {
    const std::size_t i = task.id.value;
    const int score =
        workloads::smith_waterman_score(queries[i], subjects[i]);
    const std::lock_guard<std::mutex> lock(scores_mutex);
    scores[i] = score;
  };

  // --- Run 1: real threads, really aligning. -----------------------------
  core::ThreadBackend::Params bp;
  bp.time_scale = time_scale;
  core::FarmReport thread_report;
  {
    core::ThreadBackend backend(grid, bp);
    thread_report =
        core::TaskFarm(params).run(backend, grid, grid.node_ids(), batch);
  }
  std::size_t aligned = 0;
  for (const int s : scores)
    if (s >= 0) ++aligned;

  // --- Run 2: identical farm on the simulator (bodies ignored). ----------
  core::FarmReport sim_report;
  {
    core::SimBackend backend(grid);
    sim_report =
        core::TaskFarm(params).run(backend, grid, grid.node_ids(), batch);
  }

  Table table({"backend", "makespan_virtual_s", "tasks", "alignments_run"});
  table.add_row({"threads (real DP)",
                 Table::num(thread_report.makespan.value, 2),
                 std::to_string(thread_report.tasks_completed +
                                thread_report.calibration_tasks),
                 std::to_string(aligned)});
  table.add_row({"simulated (model only)",
                 Table::num(sim_report.makespan.value, 2),
                 std::to_string(sim_report.tasks_completed +
                                sim_report.calibration_tasks),
                 "0 (bodies not run)"});
  std::cout << table.to_string() << '\n';

  int best = 0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < pairs; ++i)
    if (scores[i] > best) {
      best = scores[i];
      best_idx = i;
    }
  std::cout << "aligned " << aligned << "/" << pairs
            << " query/subject pairs on worker threads; best local "
            << "alignment score " << best << "\n(pair " << best_idx << ", "
            << queries[best_idx].size() << " x " << subjects[best_idx].size()
            << " residues)\nboth backends executed the identical TaskFarm "
               "code path.\n";
  return 0;
}
