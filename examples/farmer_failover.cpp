// Farmer failover: surviving the loss of the coordinator itself.
//
// Every other churn demo protects node 0 — the farmer — because the
// paper's skeleton cannot adapt around its own coordinator.  This example
// drops that protection: the whole pool churns, one or more hot standbys
// shadow the farmer's state through the replication log, and when the
// farmer dies mid-run the lowest-id live standby takes over, reconciles
// raced completions, and the run still finishes with every task done
// exactly once.
//
//   ./farmer_failover [key=value ...] [--trace-out t.json] [--metrics-out m.jsonl]
//   e.g. ./farmer_failover mtbf=90 standbys=2 tasks=2000 --trace-out trace.json
//
// --trace-out writes a Chrome trace-event file of the run's causal spans
// (chunks, calibrations, checkpoint passes, the crash->promotion->handshake
// arc) — load it in Perfetto / chrome://tracing.  --metrics-out writes the
// metrics registry and span stream as JSONL.
#include <iostream>

#include "bench/common.hpp"
#include "core/backend_sim.hpp"
#include "core/baselines.hpp"
#include "core/task_farm.hpp"
#include "gridsim/scenarios.hpp"
#include "obs/bridge.hpp"
#include "obs/flight_recorder.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "workloads/generators.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  const bench::ObsOptions obs_opts = bench::parse_obs_options(argc, argv);
  Config cfg;
  cfg.override_with(bench::non_obs_args(argc, argv));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 12));
  const auto spares = static_cast<std::size_t>(cfg.get_int("spares", 4));
  const auto task_count = static_cast<std::size_t>(cfg.get_int("tasks", 1500));
  const double mtbf = cfg.get_double("mtbf", 120.0);
  const auto standbys = static_cast<std::size_t>(cfg.get_int("standbys", 1));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  // The harshest membership environment: nobody is protected, not even the
  // coordinator (protected_prefix = 0).
  gridsim::ChurnScenarioParams scenario;
  scenario.grid.node_count = nodes;
  scenario.grid.dynamics = gridsim::Dynamics::Walk;
  scenario.grid.seed = seed;
  scenario.spare_nodes = spares;
  scenario.mtbf = mtbf;
  scenario.protected_prefix = 0;
  scenario.churn_seed = seed + 7;
  gridsim::Grid grid = gridsim::make_churn_grid(scenario);

  workloads::TaskSetParams wl;
  wl.count = task_count;
  wl.mean_mops = 120.0;
  wl.cv = 1.0;
  wl.seed = seed + 1;
  const workloads::TaskSet tasks = workloads::make_task_set(wl);

  core::FarmParams params = core::make_adaptive_farm_params();
  params.chunk_size = 4;
  params.resilience.enabled = true;
  params.resilience.detector.heartbeat_period = Seconds{1.0};
  params.resilience.detector.timeout = Seconds{5.0};
  params.resilience.checkpoint_period = Seconds{4.0};
  params.resilience.failover.standby_count = standbys;
  params.resilience.failover.handshake = Seconds{2.0};

  obs::Telemetry telemetry;  // detail on: spans + histograms recorded
  params.telemetry = &telemetry;
  obs::FlightRecorder flight(256);
  if (!obs_opts.flight_out.empty()) {
    flight.set_dump_path(obs_opts.flight_out);
    telemetry.flight = &flight;
  }

  core::SimBackend backend(grid);
  const core::FarmReport farm =
      core::TaskFarm(params).run(backend, grid, grid.node_ids(), tasks);

  // Fold the engine trace into the span stream (instants for membership /
  // coordination events; per-chunk spans are already recorded natively).
  obs::BridgeOptions bridge_opts;
  bridge_opts.task_spans = false;
  obs::bridge_trace(farm.trace, telemetry.spans, bridge_opts);
  if (!bench::export_telemetry(telemetry, obs_opts)) return 1;

  std::cout << "farmer-failover run: " << nodes << " nodes + " << spares
            << " spares, mtbf=" << mtbf << " s, " << standbys
            << " hot standby(s), nobody protected\n\n";

  // The coordination timeline: crashes of the farmer, promotions, recruits.
  std::cout << "coordination timeline:\n";
  for (const auto& e : farm.trace.events()) {
    const char* what = nullptr;
    switch (e.kind) {
      case gridsim::TraceEventKind::FarmerCrashDetected:
        what = "farmer lost";
        break;
      case gridsim::TraceEventKind::FarmerPromoted:
        what = "promoted";
        break;
      case gridsim::TraceEventKind::StandbyRecruited:
        what = "standby recruited";
        break;
      default:
        continue;
    }
    std::cout << "  t=" << e.at.value << "s  node " << e.node.value << "  "
              << what << (e.note.empty() ? "" : "  (" + e.note + ")")
              << "\n";
  }

  const auto& res = farm.resilience;
  Table summary({"metric", "value"});
  summary.add_row({"makespan_s", Table::num(farm.makespan.value, 1)});
  summary.add_row({"tasks_completed",
                   Table::num(static_cast<long long>(
                       farm.tasks_completed + farm.calibration_tasks))});
  summary.add_row(
      {"failovers", Table::num(static_cast<long long>(res.failovers))});
  summary.add_row({"failover_latency_s",
                   Table::num(res.failover_latency_s, 1)});
  summary.add_row({"results_rolled_back",
                   Table::num(static_cast<long long>(res.results_rolled_back))});
  summary.add_row({"standby_recruits",
                   Table::num(static_cast<long long>(res.standby_recruits))});
  summary.add_row({"replication_records",
                   Table::num(static_cast<long long>(res.replication_records))});
  summary.add_row({"replication_kb",
                   Table::num(res.replication_bytes / 1024.0, 0)});
  summary.add_row({"worker_crashes",
                   Table::num(static_cast<long long>(res.crashes_detected))});
  summary.add_row({"tasks_redispatched",
                   Table::num(static_cast<long long>(res.tasks_redispatched))});
  std::cout << "\n" << summary.to_string();

  const bool complete =
      farm.tasks_completed + farm.calibration_tasks == tasks.size();
  std::cout << "\n"
            << (complete ? "every task completed exactly once despite "
                           "coordinator loss"
                         : "INCOMPLETE RUN — conservation violated")
            << "\n";
  return complete ? 0 : 1;
}
