// Parameter-sweep farm: rendering the Mandelbrot set tile-by-tile.
//
// The classic irregular sweep: tiles near the set cost orders of magnitude
// more than far-field tiles (costs are derived from real escape-time
// iteration counts, see workloads/kernels.hpp).  The example runs the sweep
// on a two-site non-dedicated grid three ways — static block, demand-driven,
// GRASP adaptive — and prints per-node work shares so the effect of
// calibrated selection is visible.
//
//   ./param_sweep_farm [key=value ...]   e.g. tiles=24 nodes=24 seed=3
#include <algorithm>
#include <iostream>

#include "core/backend_sim.hpp"
#include "core/baselines.hpp"
#include "core/task_farm.hpp"
#include "gridsim/scenarios.hpp"
#include "support/config.hpp"
#include "support/table.hpp"
#include "workloads/applications.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  Config cfg;
  cfg.override_with({argv + 1, argv + argc});
  const auto tiles = static_cast<std::size_t>(cfg.get_int("tiles", 20));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 20));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  workloads::MandelbrotSweepParams mp;
  mp.tiles_x = tiles;
  mp.tiles_y = tiles;
  mp.max_iterations = 768;
  const workloads::TaskSet sweep = workloads::make_mandelbrot_sweep(mp);
  std::cout << "workload: " << sweep.name << " — " << sweep.size()
            << " tiles, total " << Table::num(sweep.total_work().value, 0)
            << " Mops (min/max tile cost ratio shows the irregularity)\n\n";

  gridsim::ScenarioParams sp;
  sp.node_count = nodes;
  sp.dynamics = gridsim::Dynamics::Mixed;
  sp.swamped_fraction = 0.15;
  sp.seed = seed;

  Table results({"scheduler", "makespan_s", "tiles_per_s"});
  core::FarmReport adaptive_report;
  {
    gridsim::Grid grid = gridsim::make_grid(sp);
    core::SimBackend backend(grid);
    const auto r =
        core::StaticBlockFarm().run(backend, grid.node_ids(), sweep);
    results.add_row({"static block", Table::num(r.makespan.value, 1),
                     Table::num(static_cast<double>(r.tasks_completed) /
                                    r.makespan.value,
                                2)});
  }
  {
    gridsim::Grid grid = gridsim::make_grid(sp);
    core::SimBackend backend(grid);
    const auto r = core::TaskFarm(core::make_demand_farm_params())
                       .run(backend, grid, grid.node_ids(), sweep);
    results.add_row({"demand-driven", Table::num(r.makespan.value, 1),
                     Table::num(r.throughput(), 2)});
  }
  {
    gridsim::Grid grid = gridsim::make_grid(sp);
    core::SimBackend backend(grid);
    adaptive_report = core::TaskFarm(core::make_adaptive_farm_params())
                          .run(backend, grid, grid.node_ids(), sweep);
    results.add_row({"GRASP adaptive",
                     Table::num(adaptive_report.makespan.value, 1),
                     Table::num(adaptive_report.throughput(), 2)});
  }
  std::cout << results.to_string() << '\n';

  // Who did the work?  Completions per node under the adaptive run.
  std::vector<std::size_t> per_node(nodes, 0);
  for (const auto& e : adaptive_report.trace.events())
    if (e.kind == gridsim::TraceEventKind::TaskCompleted)
      ++per_node[e.node.value];
  const gridsim::Grid grid = gridsim::make_grid(sp);
  Table shares({"node", "base_mops", "swamped", "tiles_done"});
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto& n = grid.node(NodeId{i});
    const bool swamped = n.load_at(Seconds{0.0}) > 10.0;
    shares.add_row({n.name(), Table::num(n.base_speed_mops(), 0),
                    swamped ? "yes" : "no", std::to_string(per_node[i])});
  }
  std::cout << shares.to_string()
            << "\nnote how swamped nodes receive (almost) no tiles: "
               "calibration excluded them.\n";
  return 0;
}
