// Job stream: a day in the life of a multi-tenant GridService.
//
// Every other example runs ONE engine over a dedicated pool.  Here a
// resident GridService owns the pool and a compressed "day" of jobs
// arrives open-loop — non-homogeneous Poisson with a diurnal rate swing —
// drawn from the three farm applications (Mandelbrot sweeps, alignment
// batches, quadrature refinement).  The service time-shares the nodes
// across whatever is live under weighted fair share over delivered mops,
// and one tenant's calibration samples warm-start the next tenant's
// Algorithm-1 pass through the shared pool-wide cache.
//
//   ./job_stream [key=value ...] [--trace-out t.json] [--metrics-out m.jsonl]
//   e.g. ./job_stream horizon=600 rate_per_min=20 max_share=0.3
//
// --trace-out writes a Chrome trace-event file where every tenant is one
// "job" span subtree (load it in Perfetto: overlapping subtrees ARE the
// multi-tenancy); --metrics-out streams the shared registry, including
// the per-job "job.<seq>." scoped views, as JSONL.
#include <iostream>

#include "bench/common.hpp"
#include "obs/flight_recorder.hpp"
#include "svc/grid_service.hpp"
#include "support/config.hpp"
#include "workloads/applications.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  const bench::ObsOptions obs_opts = bench::parse_obs_options(argc, argv);
  Config cfg;
  cfg.override_with(bench::non_obs_args(argc, argv));
  const auto nodes = static_cast<std::size_t>(cfg.get_int("nodes", 16));
  const double horizon = cfg.get_double("horizon", 480.0);
  const double rate_per_min = cfg.get_double("rate_per_min", 12.0);
  const double max_share = cfg.get_double("max_share", 0.45);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  gridsim::ScenarioParams sp;
  sp.node_count = nodes;
  sp.sites = 2;
  sp.dynamics = gridsim::Dynamics::Stable;
  sp.seed = seed;
  gridsim::Grid grid = gridsim::make_grid(sp);

  workloads::JobArrivalParams ap;
  ap.horizon = Seconds{horizon};
  ap.base_rate_per_s = rate_per_min / 60.0;
  ap.diurnal_amplitude = 0.6;
  ap.diurnal_period = Seconds{horizon / 2.0};
  ap.diurnal_phase = 0.75;
  ap.kind_weights = {2.0, 1.0, 1.0};
  ap.seed = seed + 13;
  const auto arrivals = workloads::make_job_arrivals(ap);

  obs::Telemetry telemetry;
  obs::FlightRecorder flight(256);
  if (!obs_opts.flight_out.empty()) {
    flight.set_dump_path(obs_opts.flight_out);
    telemetry.flight = &flight;
  }
  svc::GridService::Params params;
  params.telemetry = &telemetry;
  core::SimBackend backend(grid);
  svc::GridService service(backend, grid, grid.node_ids(), params);

  std::vector<svc::JobHandle> handles;
  std::vector<std::size_t> sizes;
  for (const workloads::JobArrival& a : arrivals) {
    const auto kind = static_cast<workloads::ApplicationKind>(a.kind);
    workloads::TaskSet tasks =
        workloads::make_application_task_set(kind, a.seed);
    sizes.push_back(tasks.size());
    svc::JobOptions opt;
    opt.name = workloads::to_string(kind);
    opt.max_share = max_share;
    opt.min_nodes = 2;
    handles.push_back(service.submit_at(
        a.at,
        svc::FarmJob{core::make_adaptive_farm_params(), std::move(tasks)},
        opt));
  }
  service.wait_all();

  if (!bench::export_telemetry(telemetry, obs_opts)) return 1;

  std::cout << "job stream: " << arrivals.size() << " arrivals over "
            << horizon << " virtual seconds, " << nodes
            << " nodes, max_share=" << max_share << "\n\n";

  // Per-tenant timeline: arrival, wait, run, calibration bill.
  Table timeline({"job", "kind", "arrived_s", "wait_s", "ran_s",
                  "calib_tasks", "status"});
  bool conserved = true;
  std::size_t total_calibration = 0;
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const svc::JobHandle& h = handles[j];
    std::size_t calibration = 0;
    if (h.has_farm_report()) {
      const core::FarmReport& r = h.farm_report();
      calibration = r.calibration_tasks;
      total_calibration += calibration;
      if (r.tasks_completed + r.calibration_tasks != sizes[j])
        conserved = false;
    } else if (h.status() != svc::JobStatus::Rejected) {
      conserved = false;
    }
    timeline.add_row({Table::num(static_cast<long long>(h.id())), h.name(),
                      Table::num(h.submitted_at().value, 1),
                      Table::num(h.queue_wait_s(), 1),
                      Table::num(h.makespan_s(), 1),
                      Table::num(static_cast<long long>(calibration)),
                      svc::to_string(h.status())});
  }
  std::cout << timeline.to_string();

  const auto& cache = service.calibration_cache();
  std::cout << "\npeak concurrent tenants: "
            << service.max_concurrent_observed()
            << "   completed: " << service.jobs_completed()
            << "   calibration cache: " << cache.stores() << " stores, "
            << cache.hits() << " hits (" << total_calibration
            << " probe tasks across the whole stream)\n"
            << (conserved
                    ? "every tenant conserved its tasks — completed + "
                      "calibration == its own set size"
                    : "INCOMPLETE STREAM — conservation violated")
            << "\n";
  return (conserved && service.jobs_failed() == 0 &&
          service.max_concurrent_observed() >= 2)
             ? 0
             : 1;
}
