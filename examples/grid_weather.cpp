// Grid weather: the resource-monitoring substrate on its own.
//
// Watches a dynamic grid for ten simulated minutes, then scores every
// forecaster (last value, running mean, sliding median, EWMA, AR(1)) on
// one-step-ahead CPU-load prediction — the information GRASP's statistical
// calibration consumes.  Finally the per-node verdicts are aggregated with
// the in-process message-passing runtime (one rank per monitored node),
// exercising the "parallel environment" layer the skeletons sit on.
//
//   ./grid_weather [key=value ...]   e.g. nodes=8 minutes=20 dynamics=bursty
#include <cmath>
#include <iostream>
#include <map>
#include <mutex>

#include "gridsim/scenarios.hpp"
#include "mp/communicator.hpp"
#include "perfmon/forecaster.hpp"
#include "perfmon/sensor.hpp"
#include "support/config.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace grasp;

  Config cfg;
  cfg.override_with({argv + 1, argv + argc});
  const auto nodes = static_cast<int>(cfg.get_int("nodes", 8));
  const double minutes = cfg.get_double("minutes", 10.0);
  const auto dynamics =
      gridsim::dynamics_from_string(cfg.get_string("dynamics", "mixed"));

  gridsim::ScenarioParams sp;
  sp.node_count = static_cast<std::size_t>(nodes);
  sp.dynamics = dynamics;
  sp.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  const gridsim::Grid grid = gridsim::make_grid(sp);

  const char* forecaster_names[] = {"last_value", "running_mean",
                                    "sliding_median", "ewma", "ar1", "meta"};

  // One message-passing rank per node: each samples its node's load series,
  // scores all forecasters locally, then the errors are reduced to rank 0.
  mp::World world(nodes);
  std::mutex io_mutex;
  std::map<std::string, double> mean_rmse;
  world.run([&](mp::Comm& comm) {
    const NodeId node{static_cast<std::uint64_t>(comm.rank())};
    perfmon::CpuLoadSensor sensor(grid, perfmon::NoiseModel::none());

    for (const char* name : forecaster_names) {
      const auto f = perfmon::make_forecaster(name);
      double sq_err = 0.0;
      std::size_t predictions = 0;
      for (double t = 1.0; t <= minutes * 60.0; t += 1.0) {
        const perfmon::Sample s = sensor.sample(node, Seconds{t});
        if (!std::isnan(f->forecast()) && t > 1.0) {
          const double err = f->forecast() - s.value;
          sq_err += err * err;
          ++predictions;
        }
        f->observe(s);
      }
      const double rmse =
          predictions > 0 ? std::sqrt(sq_err / static_cast<double>(predictions))
                          : 0.0;
      // Aggregate this forecaster's error across all ranks.
      const double total = comm.allreduce(
          rmse, [](double a, double b) { return a + b; });
      if (comm.rank() == 0) {
        const std::lock_guard<std::mutex> lock(io_mutex);
        mean_rmse[name] = total / static_cast<double>(comm.size());
      }
    }
  });

  std::cout << "grid weather report — " << nodes << " nodes, "
            << gridsim::to_string(dynamics) << " dynamics, "
            << minutes << " simulated minutes, 1 Hz sampling\n\n";
  Table table({"forecaster", "mean_rmse_load"});
  for (const char* name : forecaster_names)
    table.add_row({name, Table::num(mean_rmse[name], 4)});
  std::cout << table.to_string()
            << "\n(lower is better; which forecaster wins depends on the "
               "dynamics — try\n dynamics=walk, bursty, diurnal, stable)\n";
  return 0;
}
